"""Topology facade: link properties and end-to-end path metrics (S2+S3).

A :class:`Topology` owns a generated Waxman graph, assigns per-link
bandwidth (Table I: 0.1–10 Mb/s) and distance-derived latency, and exposes
the two end-to-end quantities the grid runtime needs:

* ``bandwidth(u, v)`` — bottleneck bandwidth of the widest path (Mb/s), and
* ``latency(u, v)``  — propagation delay of the shortest path (s).

``transfer_time(u, v, megabits)`` combines them the way the paper's cost
model does (``datasize / bandwidth``), plus the propagation term which is
negligible for the paper's data sizes but keeps the model physical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.net.bottleneck import all_pairs_bottleneck
from repro.net.waxman import WaxmanGraph, generate_waxman

__all__ = ["Topology"]

#: Speed of signal propagation used to turn plane distance into latency.
#: The plane is unit-less; this constant maps the default 1000-unit plane to
#: a ~60 ms coast-to-coast one-way delay, a typical WAN figure.
_PROPAGATION_UNITS_PER_SECOND = 25_000.0


class Topology:
    """End-to-end network model for ``n`` peers.

    Parameters
    ----------
    graph:
        The underlying Waxman graph.
    bw_min, bw_max:
        Uniform per-link bandwidth range in Mb/s (Table I: 0.1–10).
    rng:
        Generator for the bandwidth draw.

    Notes
    -----
    End-to-end matrices are computed eagerly: all-pairs bottleneck bandwidth
    via one descending-Kruskal sweep and all-pairs latency via scipy's
    multi-source Dijkstra.  For the paper's largest scale (n=2000) each
    matrix is 32 MB — fine on a laptop, and lookups on the hot scheduling
    path become O(1) array reads.
    """

    def __init__(
        self,
        graph: WaxmanGraph,
        bw_min: float = 0.1,
        bw_max: float = 10.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if bw_min <= 0 or bw_max < bw_min:
            raise ValueError(f"invalid bandwidth range [{bw_min}, {bw_max}]")
        self.graph = graph
        self.n = graph.n
        if rng is None:
            rng = np.random.default_rng(0)
        self.link_bandwidth = rng.uniform(bw_min, bw_max, size=graph.m)
        self.link_latency = graph.distances / _PROPAGATION_UNITS_PER_SECOND

        self._bandwidth = all_pairs_bottleneck(self.n, graph.edges, self.link_bandwidth)
        self._latency = self._all_pairs_latency()

    # ------------------------------------------------------------ internals
    def _all_pairs_latency(self) -> np.ndarray:
        n = self.n
        if n == 1 or self.graph.m == 0:
            lat = np.zeros((n, n))
            return lat
        e = self.graph.edges
        w = self.link_latency
        rows = np.concatenate([e[:, 0], e[:, 1]])
        cols = np.concatenate([e[:, 1], e[:, 0]])
        data = np.concatenate([w, w])
        adj = csr_matrix((data, (rows, cols)), shape=(n, n))
        lat = dijkstra(adj, directed=False)
        return lat

    # ------------------------------------------------------------------ API
    def bandwidth(self, u: int, v: int) -> float:
        """End-to-end bandwidth between peers ``u`` and ``v`` in Mb/s.

        ``inf`` for ``u == v`` (local transfers are free).
        """
        return float(self._bandwidth[u, v])

    def latency(self, u: int, v: int) -> float:
        """One-way end-to-end propagation delay in seconds."""
        return float(self._latency[u, v])

    def bandwidth_row(self, u: int) -> np.ndarray:
        """Bandwidth from ``u`` to every peer (vectorized scheduling path)."""
        return self._bandwidth[u]

    def latency_row(self, u: int) -> np.ndarray:
        """Latency from ``u`` to every peer."""
        return self._latency[u]

    def transfer_time(self, u: int, v: int, megabits: float) -> float:
        """Seconds to ship ``megabits`` of data from ``u`` to ``v``.

        Local transfers (``u == v``) are instantaneous, matching the paper's
        model where only *remote* dependent data incurs aggregation cost.
        """
        if u == v or megabits <= 0.0:
            return 0.0
        return megabits / self._bandwidth[u, v] + self._latency[u, v]

    def mean_bandwidth(self) -> float:
        """System-wide average end-to-end bandwidth (ground truth).

        This is the quantity the aggregation gossip protocol estimates in a
        decentralized way; experiments can use either.
        """
        n = self.n
        if n < 2:
            return float("inf")
        off = ~np.eye(n, dtype=bool)
        vals = self._bandwidth[off]
        finite = vals[np.isfinite(vals) & (vals > 0)]
        return float(finite.mean()) if len(finite) else 0.0

    # ------------------------------------------------------------- factory
    @classmethod
    def waxman(
        cls,
        n: int,
        rng: np.random.Generator,
        alpha: float = 0.15,
        beta: float = 0.2,
        bw_min: float = 0.1,
        bw_max: float = 10.0,
        plane_size: float = 1000.0,
    ) -> "Topology":
        """Generate a Waxman graph and wrap it in a :class:`Topology`."""
        graph = generate_waxman(n, rng, alpha=alpha, beta=beta, plane_size=plane_size)
        return cls(graph, bw_min=bw_min, bw_max=bw_max, rng=rng)
