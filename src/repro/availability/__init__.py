"""Pluggable availability & failure-recovery subsystem.

Mirrors the :mod:`repro.workload` design for the *other* axis of grid
dynamics: where the workload layer decides what is submitted and when,
this package decides **who is alive, when** (a
:class:`~repro.availability.models.ChurnModel`) and **what happens to
tasks lost in a disconnection**
(a :class:`~repro.availability.recovery.RecoveryPolicy`).

The paper's fixed per-interval churn is the default model and replays the
legacy ``repro.grid.churn.ChurnProcess`` bit-identically; session-based
(exponential/Weibull lifetimes), trace-driven, correlated-subtree-failure
and growth/shrink-ramp models open the availability axis the same way the
workload subsystem opened arrivals.  Wire-up points:
``ExperimentConfig.churn_model``/``recovery_policy``, the scenario
registry presets (``weibull-sessions``, ``flash-crowd-failure``,
``grid-rampup``, ``trace-churn``), ``repro run|campaign
--churn-model/--recovery``, and the ``fig10-dynamic`` bench preset.
"""

from repro.availability.models import (
    ChurnModel,
    CorrelatedFailures,
    GridRamp,
    PaperIntervalChurn,
    SessionChurn,
    TraceChurn,
    churn_model_names,
    make_churn_model,
)
from repro.availability.recovery import (
    CheckpointRecovery,
    FailRecovery,
    RecoveryPolicy,
    RescheduleRecovery,
    make_recovery_policy,
    recovery_policy_names,
)
from repro.availability.trace import (
    AvailabilityEvent,
    load_availability_trace,
    save_availability_trace,
)

__all__ = [
    "AvailabilityEvent",
    "CheckpointRecovery",
    "ChurnModel",
    "CorrelatedFailures",
    "FailRecovery",
    "GridRamp",
    "PaperIntervalChurn",
    "RecoveryPolicy",
    "RescheduleRecovery",
    "SessionChurn",
    "TraceChurn",
    "churn_model_names",
    "load_availability_trace",
    "make_churn_model",
    "make_recovery_policy",
    "recovery_policy_names",
    "save_availability_trace",
]
