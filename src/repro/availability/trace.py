"""Availability traces: persist and replay join/leave event logs.

Failure-trace archives (the Failure Trace Archive, Grid'5000 logs, the
SETI@home availability dumps mined by Guazzone 2014) describe resource
dynamics as timestamped per-node *sessions* — exactly a sequence of join
and leave events.  This module is the repro-side interchange format for
that shape: a JSON list of ``[time, node, kind]`` rows.

Every simulation records its realized availability events
(:attr:`repro.grid.system.P2PGridSystem.availability_events`), so any
churn model's output can be saved with :func:`save_availability_trace`
and replayed bit-compatibly through
:class:`repro.availability.models.TraceChurn` — the availability analogue
of the workload layer's submission traces.

All values are normalized to plain Python ``float``/``int``/``str`` at
the save boundary: numpy scalars do not survive a JSON round-trip (and
``revive_node`` lookups must never see ``np.int64`` keys), so the trace
layer is strict about types.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "AvailabilityEvent",
    "TRACE_SCHEMA",
    "load_availability_trace",
    "save_availability_trace",
]

#: Bump when the on-disk trace layout changes.
TRACE_SCHEMA = 1

#: Recognized event kinds.
_KINDS = ("leave", "join")


@dataclass(frozen=True)
class AvailabilityEvent:
    """One availability transition: ``node`` leaves or (re)joins at ``time``."""

    time: float
    node: int
    kind: str  # "leave" | "join"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"availability event at negative time {self.time}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown availability event kind {self.kind!r}; "
                f"expected one of {_KINDS}"
            )


def save_availability_trace(
    events: Iterable[AvailabilityEvent], path: "str | Path"
) -> Path:
    """Write an event log as JSON; returns the path.

    Times and node ids are coerced to plain ``float``/``int`` so logs
    assembled from numpy-sampled models serialize cleanly.
    """
    rows = [[float(e.time), int(e.node), str(e.kind)] for e in events]
    payload = {"schema": TRACE_SCHEMA, "events": rows}
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def load_availability_trace(path: "str | Path") -> list[AvailabilityEvent]:
    """Read a trace written by :func:`save_availability_trace`.

    Events keep file order (the replay scheduler preserves it for
    same-instant events), and must be non-decreasing in time.
    """
    p = Path(path)
    if not p.is_file():
        raise ValueError(f"availability trace not found: {p}")
    try:
        payload = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "events" not in payload:
        raise ValueError(f"{p}: expected an object with an 'events' list")
    if payload.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{p}: unsupported trace schema {payload.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})"
        )
    rows = payload["events"]
    if not isinstance(rows, list):
        raise ValueError(f"{p}: 'events' must be a list")
    events: list[AvailabilityEvent] = []
    last_t = 0.0
    for i, row in enumerate(rows):
        if not (isinstance(row, Sequence) and len(row) == 3):
            raise ValueError(f"{p}: event #{i} is not a [time, node, kind] row")
        t, node, kind = row
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            raise ValueError(f"{p}: event #{i} has non-numeric time {t!r}")
        if not isinstance(node, int) or isinstance(node, bool):
            raise ValueError(f"{p}: event #{i} has non-integer node {node!r}")
        ev = AvailabilityEvent(time=float(t), node=int(node), kind=str(kind))
        if ev.time < last_t:
            raise ValueError(
                f"{p}: event #{i} goes back in time ({ev.time} < {last_t})"
            )
        last_t = ev.time
        events.append(ev)
    return events
