"""Recovery policies: what happens to tasks lost to churn.

In ``churn_mode="fail"`` a disconnecting node takes its resident tasks
with it.  The paper's position — rescheduling is future work — makes the
owning workflow fail outright (:class:`FailRecovery`, the default).  The
``reschedule_failed`` extension, previously a bare config flag, is now the
:class:`RescheduleRecovery` policy; :class:`CheckpointRecovery` adds the
classic checkpoint-on-dispatch discipline: the home node keeps a copy of
every input it ships at dispatch time, so a lost task re-enters the
schedule-point set at its last completed predecessor frontier and dead
data sources are re-served from the home's checkpoint instead of failing
or cascading invalidations.

Policies are consulted from exactly two places in
:class:`~repro.grid.system.P2PGridSystem`:

* :meth:`RecoveryPolicy.on_task_lost` — a dispatched/queued/running task
  died with its node (churn cleanup);
* :meth:`RecoveryPolicy.on_dead_sources` — phase 1 wants to dispatch a
  task whose dependent data lives on departed nodes.

``churn_mode="suspend"`` (the paper's default reading of churn) never
loses anything, so recovery is moot there.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.state import WorkflowExecution
    from repro.grid.system import P2PGridSystem

__all__ = [
    "CheckpointRecovery",
    "FailRecovery",
    "RecoveryPolicy",
    "RescheduleRecovery",
    "make_recovery_policy",
    "recovery_policy_names",
]


class RecoveryPolicy(Protocol):
    """Strategy deciding the fate of churn-lost tasks and dead data."""

    name: str

    def on_task_lost(
        self,
        system: "P2PGridSystem",
        wx: "WorkflowExecution",
        tid: int,
        dead_node: int,
    ) -> None:
        """A not-yet-finished task was lost when ``dead_node`` departed."""
        ...

    def on_dead_sources(
        self,
        system: "P2PGridSystem",
        wx: "WorkflowExecution",
        tid: int,
        inputs: list[tuple[int, float]],
        dead_sources: list[int],
    ) -> Optional[list[tuple[int, float]]]:
        """Dependent data for ``tid`` lives on departed nodes.

        Return a patched ``(source, megabits)`` list to dispatch anyway,
        or ``None`` to skip this dispatch (the task stays a schedule
        point; the policy may have failed the workflow or invalidated
        precedents).
        """
        ...


class FailRecovery:
    """Paper semantics: a lost task fails its owning workflow."""

    name = "fail"

    def on_task_lost(self, system, wx, tid, dead_node):
        system._fail_workflow(wx, reason=f"task lost on churned node {dead_node}")

    def on_dead_sources(self, system, wx, tid, inputs, dead_sources):
        system._fail_workflow(
            wx, reason=f"dependent data lost on node {dead_sources[0]}"
        )
        return None


class RescheduleRecovery:
    """The paper's future-work extension: lost tasks become schedule
    points again, and finished tasks whose output died with the node (and
    is still needed) are invalidated so their producers re-run."""

    name = "reschedule"

    def on_task_lost(self, system, wx, tid, dead_node):
        system._reschedule_lost(wx, tid, dead_node)

    def on_dead_sources(self, system, wx, tid, inputs, dead_sources):
        for src in dead_sources:
            for p in wx.wf.precedents[tid]:
                if p in wx.finished and wx.finished[p][0] == src:
                    wx.invalidate_task(p)
        return None


class CheckpointRecovery:
    """Checkpoint-on-dispatch: the home keeps every input it ships.

    A lost task simply re-enters the schedule-point set at its last
    completed predecessor frontier — finished predecessors stay finished
    because their outputs were checkpointed at the home when they were
    shipped — and dead data sources are substituted by the home node, so
    no cascade of invalidations and no workflow failure ever originates
    from churn."""

    name = "checkpoint"

    def on_task_lost(self, system, wx, tid, dead_node):
        wx.invalidate_task(tid)

    def on_dead_sources(self, system, wx, tid, inputs, dead_sources):
        dead = set(dead_sources)
        # Re-serve lost inputs from the home's dispatch-time checkpoint.
        return [
            (wx.home_id if src in dead else src, mb) for src, mb in inputs
        ]


_POLICIES: dict[str, type] = {
    p.name: p for p in (FailRecovery, RescheduleRecovery, CheckpointRecovery)
}


def recovery_policy_names() -> list[str]:
    """Registered recovery-policy names (``ExperimentConfig.recovery_policy``)."""
    return sorted(_POLICIES)


def make_recovery_policy(name: str) -> RecoveryPolicy:
    """Instantiate a recovery policy by name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown recovery_policy {name!r}; "
            f"available: {', '.join(recovery_policy_names())}"
        ) from None
    return cls()
