"""Churn models: *who is alive, when* (substrate S13 made pluggable).

The paper's dynamic-grid evaluation (§IV.B, Figs. 10–14) uses one churn
shape — a fixed fraction ``df`` of volatile nodes swapped every scheduling
interval — which :class:`PaperIntervalChurn` reproduces bit-identically to
the original ``repro.grid.churn.ChurnProcess`` (same RNG stream, same draw
order, same event schedule).  Real grids are messier: availability traces
show heavy-tailed, time-correlated node sessions (Guazzone 2014's workload
mining; the Failure Trace Archive), and grid simulators such as GridSim
treat resource dynamics as a first-class pluggable model.  The other
models here cover that space:

* :class:`SessionChurn` — per-node exponential/Weibull session lifetimes
  with per-node random rejoin delays (``session_shape`` < 1 gives the
  heavy-tailed sessions traces exhibit);
* :class:`TraceChurn` — replay an exact join/leave event trace
  (:mod:`repro.availability.trace`), FTA-style;
* :class:`CorrelatedFailures` — flash-crowd events: a random connected
  subtree of the Waxman topology (switch/power-domain failure) drops at
  once and rejoins together;
* :class:`GridRamp` — deterministic growth/shrink ramps (volatile nodes
  join one by one over a window, or progressively leave).

Every model is an *event-driven process*: ``start()`` is called once by
:meth:`repro.grid.system.P2PGridSystem.run` and schedules whatever
simulator events the model needs (the paper-interval model arms the same
periodic activity the legacy code did, preserving the event sequence).
Home nodes never churn — models only ever touch the volatile population.

Node ids are normalized to plain Python ``int`` the moment they come out
of a numpy sampler, so departed-pool bookkeeping, ``revive_node`` lookups
and saved traces never carry ``np.int64`` scalars.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Optional, Protocol

import numpy as np

from repro.sim.periodic import PeriodicActivity

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import P2PGridSystem

__all__ = [
    "ChurnModel",
    "CorrelatedFailures",
    "GridRamp",
    "PaperIntervalChurn",
    "SessionChurn",
    "TraceChurn",
    "churn_model_names",
    "make_churn_model",
]


class ChurnModel(Protocol):
    """Strategy deciding when volatile nodes leave and rejoin the grid."""

    name: str

    def start(self) -> None:
        """Schedule the model's simulator events (called once, at run)."""
        ...


class PaperIntervalChurn:
    """The paper's churn shape: a fixed batch swapped every interval.

    The *dynamic factor* df is the ratio of churning nodes to the total
    node count per scheduling interval: with df = 0.1 and 1000 nodes,
    every interval 100 nodes disconnect and 100 (re)join.  Each tick first
    revives the previously departed batch (joiners arrive fresh) and then
    disconnects a new batch sampled among alive volatile nodes, so a
    departed node stays away for at least one full interval.

    This model is the default and replays the legacy
    ``repro.grid.churn.ChurnProcess`` bit-identically: identical RNG
    stream consumption (one ``Generator.choice`` per tick on an
    ``np.int64`` array) and an identical periodic event schedule.
    """

    name = "paper-interval"

    def __init__(self, system: "P2PGridSystem", rng: np.random.Generator):
        self.system = system
        self.rng = rng
        cfg = system.config
        self.batch = int(round(cfg.dynamic_factor * cfg.n_nodes))
        self.volatile_ids = [n.nid for n in system.nodes if n.volatile]
        self.departed: list[int] = []
        self.total_departures = 0
        self.total_joins = 0

    def start(self) -> None:
        PeriodicActivity(
            self.system.sim,
            self.system.config.schedule_interval,
            self.tick,
            label="churn",
        )

    def tick(self, cycle: int) -> None:
        """One churn interval: revive last batch, then disconnect a new one."""
        if self.batch <= 0 or not self.volatile_ids:
            return
        # --- joins: the previously departed batch returns fresh ----------
        joiners = self.departed
        self.departed = []
        for nid in joiners:
            self.system.revive_node(nid)
        self.total_joins += len(joiners)

        # --- leaves: sample new victims among alive volatile nodes -------
        alive = [nid for nid in self.volatile_ids if self.system.nodes[nid].alive]
        k = min(self.batch, len(alive))
        if k == 0:
            return
        victims = self.rng.choice(np.asarray(alive, dtype=np.int64), size=k, replace=False)
        for nid in victims:
            # Boundary normalization: numpy scalars must not leak into the
            # departed pool, node lookups, or saved traces.
            nid = int(nid)
            self.system.kill_node(nid)
            self.departed.append(nid)
        self.total_departures += k


class SessionChurn:
    """Session-based availability: each volatile node lives through an
    alternating sequence of online sessions and offline gaps.

    Session lengths are Weibull with shape ``session_shape`` (1.0 is
    exponential/memoryless; < 1 is the heavy-tailed regime availability
    traces show) and mean ``session_mean``; offline gaps are exponential
    with mean ``rejoin_delay_mean`` (0 = instant rejoin).  All draws come
    from the dedicated ``"churn"`` stream in deterministic event order.
    """

    name = "sessions"

    def __init__(self, system: "P2PGridSystem", rng: np.random.Generator):
        self.system = system
        self.rng = rng
        cfg = system.config
        self.mean = cfg.session_mean
        self.shape = cfg.session_shape
        self.rejoin_mean = cfg.rejoin_delay_mean
        #: Weibull scale matching the requested mean: E[X] = λ Γ(1 + 1/k).
        self._scale = self.mean / math.gamma(1.0 + 1.0 / self.shape)
        self.volatile_ids = [n.nid for n in system.nodes if n.volatile]

    # ------------------------------------------------------------- sampling
    def lifetime(self) -> float:
        """Draw one online-session length (seconds)."""
        return float(self._scale * self.rng.weibull(self.shape))

    def rejoin_delay(self) -> float:
        """Draw one offline-gap length (seconds)."""
        if self.rejoin_mean <= 0:
            return 0.0
        return float(self.rng.exponential(self.rejoin_mean))

    # --------------------------------------------------------------- events
    def start(self) -> None:
        for nid in self.volatile_ids:
            self.system.sim.schedule(
                self.lifetime(), lambda n=nid: self._depart(n), label="churn"
            )

    def _depart(self, nid: int) -> None:
        if not self.system.nodes[nid].alive:
            return
        self.system.kill_node(nid)
        self.system.sim.schedule(
            self.rejoin_delay(), lambda n=nid: self._rejoin(n), label="churn"
        )

    def _rejoin(self, nid: int) -> None:
        if self.system.nodes[nid].alive:
            return
        self.system.revive_node(nid)
        self.system.sim.schedule(
            self.lifetime(), lambda n=nid: self._depart(n), label="churn"
        )


class TraceChurn:
    """Replay a recorded join/leave event trace (FTA-style).

    ``config.availability_path`` points at a JSON trace written by
    :func:`repro.availability.trace.save_availability_trace` — e.g. the
    ``availability_events`` log of a previous run under any other model.
    Draws nothing from the RNG; events beyond the horizon are dropped,
    and same-instant events keep file order.
    """

    name = "trace"

    def __init__(self, system: "P2PGridSystem", rng: np.random.Generator):
        from repro.availability.trace import load_availability_trace

        cfg = system.config
        if not cfg.availability_path:
            raise ValueError(
                "churn_model='trace' needs availability_path pointing at a "
                "join/leave trace (see repro.availability.save_availability_trace; "
                "CLI: --set availability_path=...)"
            )
        self.system = system
        self.events = load_availability_trace(cfg.availability_path)
        for ev in self.events:
            if not 0 <= ev.node < cfg.n_nodes:
                raise ValueError(
                    f"availability trace references node {ev.node}, outside "
                    f"the {cfg.n_nodes}-node grid"
                )
            if not system.nodes[ev.node].volatile:
                raise ValueError(
                    f"availability trace churns node {ev.node}, which is not "
                    "volatile (homes and permanent nodes never churn; lower "
                    "permanent_fraction or regenerate the trace)"
                )

    def start(self) -> None:
        sim = self.system.sim
        horizon = self.system.config.total_time
        for ev in self.events:
            if ev.time > horizon:
                continue
            if ev.kind == "leave":
                sim.schedule_at(
                    ev.time, lambda n=ev.node: self.system.kill_node(n), label="churn"
                )
            else:
                sim.schedule_at(
                    ev.time, lambda n=ev.node: self.system.revive_node(n), label="churn"
                )


class CorrelatedFailures:
    """Flash-crowd failures: a connected subtree drops at once.

    Failure events arrive as a Poisson process with mean inter-event time
    ``failure_interval``.  Each event picks a random alive volatile root
    and grows a breadth-first subtree over the Waxman topology (restricted
    to alive volatile nodes) up to ``round(dynamic_factor * n_nodes)``
    victims — modelling a shared switch or power-domain failure, where
    topologically close nodes die together.  The whole batch rejoins after
    one exponential ``rejoin_delay_mean`` gap.
    """

    name = "correlated"

    def __init__(self, system: "P2PGridSystem", rng: np.random.Generator):
        self.system = system
        self.rng = rng
        cfg = system.config
        self.batch = max(1, int(round(cfg.dynamic_factor * cfg.n_nodes)))
        self.interval = cfg.failure_interval
        self.rejoin_mean = cfg.rejoin_delay_mean
        self.volatile_ids = [n.nid for n in system.nodes if n.volatile]
        # Sorted adjacency lists over the Waxman graph: deterministic BFS.
        adjacency: dict[int, list[int]] = {nid: [] for nid in range(cfg.n_nodes)}
        for u, v in system.topology.graph.edges:
            adjacency[int(u)].append(int(v))
            adjacency[int(v)].append(int(u))
        self.adjacency = {nid: sorted(nbrs) for nid, nbrs in adjacency.items()}
        self.total_events = 0

    def start(self) -> None:
        if not self.volatile_ids:
            return
        self.system.sim.schedule(
            float(self.rng.exponential(self.interval)), self._fire, label="churn"
        )

    def subtree(self, root: int) -> list[int]:
        """BFS subtree of alive volatile nodes rooted at ``root``, capped at
        the batch size (the component may be smaller)."""
        nodes = self.system.nodes
        victims: list[int] = []
        seen = {root}
        queue = deque([root])
        while queue and len(victims) < self.batch:
            nid = queue.popleft()
            victims.append(nid)
            for nbr in self.adjacency[nid]:
                if nbr in seen or not nodes[nbr].volatile or not nodes[nbr].alive:
                    continue
                seen.add(nbr)
                queue.append(nbr)
        return victims

    def _fire(self) -> None:
        alive = [nid for nid in self.volatile_ids if self.system.nodes[nid].alive]
        if alive:
            root = int(self.rng.choice(np.asarray(alive, dtype=np.int64)))
            victims = self.subtree(root)
            for nid in victims:
                self.system.kill_node(nid)
            self.total_events += 1
            delay = (
                float(self.rng.exponential(self.rejoin_mean))
                if self.rejoin_mean > 0
                else 0.0
            )
            self.system.sim.schedule(
                delay, lambda group=victims: self._rejoin(group), label="churn"
            )
        self.system.sim.schedule(
            float(self.rng.exponential(self.interval)), self._fire, label="churn"
        )

    def _rejoin(self, group: list[int]) -> None:
        for nid in group:
            if not self.system.nodes[nid].alive:
                self.system.revive_node(nid)


class GridRamp:
    """Deterministic growth/shrink ramps (draws nothing from the RNG).

    ``ramp_direction="up"``: every volatile node starts offline and they
    join one by one, evenly spaced over the first ``ramp_window`` fraction
    of the horizon — a grid bootstrapping while the permanent core already
    schedules.  ``"down"``: the grid starts full and volatile nodes leave
    one by one over the window, never to return — graceful decommission.
    """

    name = "ramp"

    def __init__(self, system: "P2PGridSystem", rng: np.random.Generator):
        self.system = system
        cfg = system.config
        self.direction = cfg.ramp_direction
        self.window = cfg.ramp_window * cfg.total_time
        self.volatile_ids = [n.nid for n in system.nodes if n.volatile]

    def start(self) -> None:
        k = len(self.volatile_ids)
        if k == 0:
            return
        sim = self.system.sim
        step = self.window / k
        if self.direction == "up":
            for nid in self.volatile_ids:
                self.system.kill_node(nid)
            for i, nid in enumerate(self.volatile_ids):
                sim.schedule_at(
                    (i + 1) * step,
                    lambda n=nid: self.system.revive_node(n),
                    label="churn",
                )
        else:
            for i, nid in enumerate(self.volatile_ids):
                sim.schedule_at(
                    (i + 1) * step,
                    lambda n=nid: self.system.kill_node(n),
                    label="churn",
                )


_MODELS: dict[str, type] = {
    m.name: m
    for m in (PaperIntervalChurn, SessionChurn, TraceChurn, CorrelatedFailures, GridRamp)
}


def churn_model_names() -> list[str]:
    """Registered churn-model names (``ExperimentConfig.churn_model``)."""
    return sorted(_MODELS)


def make_churn_model(
    system: "P2PGridSystem", rng: Optional[np.random.Generator] = None
) -> ChurnModel:
    """Instantiate the churn model selected by ``system.config``."""
    name = system.config.churn_model
    try:
        cls = _MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown churn_model {name!r}; "
            f"available: {', '.join(churn_model_names())}"
        ) from None
    if rng is None:
        rng = system.rng.stream("churn")
    return cls(system, rng)
