"""Thin stdlib client for the ``repro serve`` HTTP API.

Used by the CI service job and the concurrent-submission stress benchmark;
also the easiest programmatic entry point::

    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8642")
    record = client.submit({"algorithms": ["dsmf"], "seeds": [1],
                            "overrides": {"n_nodes": 40}})
    record = client.wait(record["id"])
    for run in record["runs"]:
        print(run["label"], client.result(run["config_hash"])["act"])

Every request carries a timeout, so a dead or wedged server surfaces as
an exception instead of a hang.  Transient failures are retried where
that is safe: idempotent GETs on connection errors (reset, refused, torn
response) with capped jittered exponential backoff, and *any* method on
``429``/``503`` — the server rejected before doing work — honoring the
``Retry-After`` header when one is sent.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Mapping, Optional

__all__ = ["ServiceClient", "ServiceError"]

#: Statuses that are safe to retry for any method: the server refused the
#: request before acting on it (overload / not ready).
_RETRY_STATUSES = (429, 503)


class ServiceError(RuntimeError):
    """A non-2xx response; carries the server's structured error body."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message
        #: Parsed ``Retry-After`` header (seconds), when the server sent one.
        self.retry_after = retry_after


class ServiceClient:
    """Minimal blocking client (urllib; no extra dependencies).

    Parameters
    ----------
    timeout:
        Per-request socket timeout.
    retries:
        Transient-failure retries per request (0 disables).  Connection
        errors are only retried on GETs — a torn POST may have been
        accepted, and resubmitting it would double-submit; 429/503 are
        retried for any method.
    backoff:
        Base retry delay; doubles per attempt, capped at ``backoff_cap``,
        jittered ±50% so concurrent clients don't retry in lockstep.
        ``Retry-After`` from the server overrides the computed delay.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.25,
        backoff_cap: float = 5.0,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0 or backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._rng = random.Random()

    # ------------------------------------------------------------ plumbing
    def _sleep_before_retry(self, attempt: int, retry_after: Optional[float]) -> None:
        """Capped exponential backoff with ±50% jitter; the server's
        ``Retry-After`` wins when present."""
        if retry_after is not None:
            delay = min(retry_after, self.backoff_cap)
        else:
            delay = min(self.backoff * 2**attempt, self.backoff_cap)
            delay *= 0.5 + self._rng.random()
        if delay > 0:
            time.sleep(delay)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        raw: bool = False,
        timeout: Optional[float] = None,
    ):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path, data=data, method=method, headers=headers
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout if timeout is None else timeout
                ) as response:
                    body = response.read().decode("utf-8")
                    return body if raw else json.loads(body)
            except urllib.error.HTTPError as exc:
                body = exc.read()
                try:
                    error = json.loads(body.decode("utf-8")).get("error", {})
                except ValueError:
                    error = {}
                retry_after = _parse_retry_after(exc.headers.get("Retry-After"))
                err = ServiceError(
                    exc.code,
                    error.get("code", "http-error"),
                    error.get("message", body.decode("utf-8", errors="replace")[:200]),
                    retry_after=retry_after,
                )
                if exc.code in _RETRY_STATUSES and attempt < self.retries:
                    self._sleep_before_retry(attempt, retry_after)
                    continue
                raise err from None
            except (urllib.error.URLError, http.client.HTTPException, OSError):
                # Connection-level failure: reset, refused, torn response.
                # Only GETs are safely repeatable — a torn POST may have
                # been accepted server-side.
                if method == "GET" and attempt < self.retries:
                    self._sleep_before_retry(attempt, None)
                    continue
                raise

    # -------------------------------------------------------------- routes
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, manifest: Mapping) -> dict:
        """``POST /campaigns``; returns the 202 record (id, runs, hashes)."""
        return self._request("POST", "/campaigns", payload=manifest)

    def submit_sweep(self, manifest: Mapping) -> dict:
        """``POST /sweeps``; returns the 202 record (id, kind "sweep").

        Poll with :meth:`campaign`/:meth:`wait` — probe runs appear as the
        adaptive search chooses them, and the finished record carries the
        capacity-envelope ``report``.
        """
        return self._request("POST", "/sweeps", payload=manifest)

    def campaign(
        self,
        campaign_id: str,
        wait: Optional[float] = None,
        version: Optional[int] = None,
    ) -> dict:
        """One campaign's status; ``wait`` seconds long-polls.

        With ``wait``, the server holds the response until the campaign
        changes state (or its 30s cap elapses), so progress arrives the
        moment it happens.  Pass ``version`` (the ``version`` field of the
        last response seen) so a transition that landed *between* two
        polls returns immediately instead of parking the full ``wait``.
        The request timeout is stretched to cover the park time.
        """
        if wait is None:
            return self._request("GET", f"/campaigns/{campaign_id}")
        query = f"?wait={wait:g}"
        if version is not None:
            query += f"&version={version:d}"
        return self._request(
            "GET",
            f"/campaigns/{campaign_id}{query}",
            timeout=self.timeout + wait,
        )

    def campaigns(self) -> list[dict]:
        return self._request("GET", "/campaigns")["campaigns"]

    def result(self, config_hash: str) -> dict:
        """A cached :class:`RunResult` as JSON (404 -> ServiceError)."""
        return self._request("GET", f"/results/{config_hash}")

    def experiments(self) -> list[dict]:
        return self._request("GET", "/experiments")["experiments"]

    def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text exposition."""
        return self._request("GET", "/metrics", raw=True)

    # ------------------------------------------------------------- helpers
    def wait(self, campaign_id: str, timeout: float = 120.0, poll: float = 5.0) -> dict:
        """Long-poll until the campaign reaches ``done``/``failed``.

        Each round trip parks on the server up to roughly ``poll`` seconds
        and returns the instant the campaign changes state, so completion
        is seen with no polling lag.  The actual park time is jittered
        ±25% per round trip — N clients started together (the stress
        benchmark, a CI fan-out) would otherwise re-poll on the same tick
        forever, hitting the server in synchronized herds.  The last-seen
        ``version`` rides along on every poll, closing the race where a
        transition lands between two round trips (without it, such a poll
        parks the full ``poll`` seconds despite the change having already
        happened).  Raises :class:`TimeoutError` if the campaign isn't
        terminal within ``timeout`` seconds (the hung-request guard the CI
        job relies on).
        """
        deadline = time.monotonic() + timeout
        version: Optional[int] = None
        while True:
            remaining = deadline - time.monotonic()
            jittered = poll * (0.75 + 0.5 * self._rng.random())
            record = self.campaign(
                campaign_id,
                wait=max(0.0, min(jittered, remaining)),
                version=version,
            )
            if record["status"] in ("done", "failed"):
                return record
            version = record.get("version")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {record['status']!r} "
                    f"after {timeout:.0f}s "
                    f"({record['progress']['completed']}/{record['progress']['total']} done)"
                )

    def wait_healthy(self, timeout: float = 30.0, poll: float = 0.2) -> dict:
        """Poll ``/healthz`` until the server answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (ServiceError, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.base_url} not healthy after {timeout:.0f}s"
                    ) from None
                time.sleep(poll)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Parse a ``Retry-After`` header (delta-seconds form only)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return max(0.0, seconds)
