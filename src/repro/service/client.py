"""Thin stdlib client for the ``repro serve`` HTTP API.

Used by the CI service job and the concurrent-submission stress benchmark;
also the easiest programmatic entry point::

    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8642")
    record = client.submit({"algorithms": ["dsmf"], "seeds": [1],
                            "overrides": {"n_nodes": 40}})
    record = client.wait(record["id"])
    for run in record["runs"]:
        print(run["label"], client.result(run["config_hash"])["act"])

Every request carries a timeout, so a dead or wedged server surfaces as
an exception instead of a hang.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Mapping, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response; carries the server's structured error body."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """Minimal blocking client (urllib; no extra dependencies)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        raw: bool = False,
        timeout: Optional[float] = None,
    ):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                body = response.read().decode("utf-8")
                return body if raw else json.loads(body)
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                error = json.loads(body.decode("utf-8")).get("error", {})
            except ValueError:
                error = {}
            raise ServiceError(
                exc.code,
                error.get("code", "http-error"),
                error.get("message", body.decode("utf-8", errors="replace")[:200]),
            ) from None

    # -------------------------------------------------------------- routes
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, manifest: Mapping) -> dict:
        """``POST /campaigns``; returns the 202 record (id, runs, hashes)."""
        return self._request("POST", "/campaigns", payload=manifest)

    def submit_sweep(self, manifest: Mapping) -> dict:
        """``POST /sweeps``; returns the 202 record (id, kind "sweep").

        Poll with :meth:`campaign`/:meth:`wait` — probe runs appear as the
        adaptive search chooses them, and the finished record carries the
        capacity-envelope ``report``.
        """
        return self._request("POST", "/sweeps", payload=manifest)

    def campaign(
        self,
        campaign_id: str,
        wait: Optional[float] = None,
        version: Optional[int] = None,
    ) -> dict:
        """One campaign's status; ``wait`` seconds long-polls.

        With ``wait``, the server holds the response until the campaign
        changes state (or its 30s cap elapses), so progress arrives the
        moment it happens.  Pass ``version`` (the ``version`` field of the
        last response seen) so a transition that landed *between* two
        polls returns immediately instead of parking the full ``wait``.
        The request timeout is stretched to cover the park time.
        """
        if wait is None:
            return self._request("GET", f"/campaigns/{campaign_id}")
        query = f"?wait={wait:g}"
        if version is not None:
            query += f"&version={version:d}"
        return self._request(
            "GET",
            f"/campaigns/{campaign_id}{query}",
            timeout=self.timeout + wait,
        )

    def campaigns(self) -> list[dict]:
        return self._request("GET", "/campaigns")["campaigns"]

    def result(self, config_hash: str) -> dict:
        """A cached :class:`RunResult` as JSON (404 -> ServiceError)."""
        return self._request("GET", f"/results/{config_hash}")

    def experiments(self) -> list[dict]:
        return self._request("GET", "/experiments")["experiments"]

    def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text exposition."""
        return self._request("GET", "/metrics", raw=True)

    # ------------------------------------------------------------- helpers
    def wait(self, campaign_id: str, timeout: float = 120.0, poll: float = 5.0) -> dict:
        """Long-poll until the campaign reaches ``done``/``failed``.

        Each round trip parks on the server up to ``poll`` seconds and
        returns the instant the campaign changes state, so completion is
        seen with no polling lag.  The last-seen ``version`` rides along
        on every poll, closing the race where a transition lands between
        two round trips (without it, such a poll parks the full ``poll``
        seconds despite the change having already happened).  Raises
        :class:`TimeoutError` if the campaign isn't terminal within
        ``timeout`` seconds (the hung-request guard the CI job relies on).
        """
        deadline = time.monotonic() + timeout
        version: Optional[int] = None
        while True:
            remaining = deadline - time.monotonic()
            record = self.campaign(
                campaign_id,
                wait=max(0.0, min(poll, remaining)),
                version=version,
            )
            if record["status"] in ("done", "failed"):
                return record
            version = record.get("version")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {record['status']!r} "
                    f"after {timeout:.0f}s "
                    f"({record['progress']['completed']}/{record['progress']['total']} done)"
                )

    def wait_healthy(self, timeout: float = 30.0, poll: float = 0.2) -> dict:
        """Poll ``/healthz`` until the server answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (ServiceError, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.base_url} not healthy after {timeout:.0f}s"
                    ) from None
                time.sleep(poll)
