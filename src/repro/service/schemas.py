"""Campaign manifests and JSON serialization for the service layer.

A *manifest* is the JSON body of ``POST /campaigns`` — the service-side
equivalent of a ``repro campaign`` invocation::

    {
      "scenario": "poisson-steady",
      "algorithms": ["dsmf", "dheft"],
      "seeds": [1, 2, 3],
      "overrides": {"n_nodes": 40, "total_time": 21600.0}
    }

Validation is strict and *structured*: every rejection raises
:class:`ManifestError` carrying a stable machine-readable ``code`` and the
offending ``field``, which the HTTP layer turns into a 4xx JSON body — a
malformed manifest must never 500 or wedge the worker.  Config-level
checks are delegated to :class:`~repro.experiments.config.ExperimentConfig`
itself, so the service accepts exactly what the CLI accepts.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.campaign import RunSpec
    from repro.metrics.collectors import RunResult

__all__ = [
    "MANIFEST_KEYS",
    "MAX_ALGORITHMS",
    "MAX_BODY_BYTES",
    "MAX_SCENARIOS",
    "MAX_SEEDS",
    "SWEEP_MANIFEST_KEYS",
    "ManifestError",
    "manifest_specs",
    "parse_manifest",
    "result_to_dict",
    "sweep_request",
]

#: Request bodies above this size are rejected outright (HTTP 413).
MAX_BODY_BYTES = 256 * 1024
#: Sweep-shape caps: a manifest is one campaign, not a denial of service.
MAX_ALGORITHMS = 16
MAX_SEEDS = 64
MAX_SCENARIOS = 8

#: The complete set of top-level manifest keys.
MANIFEST_KEYS = frozenset({"scenario", "algorithms", "seeds", "overrides"})

#: The complete set of top-level keys of a ``POST /sweeps`` body (the
#: capacity-sweep variant: plural ``scenarios`` plus the search criterion).
SWEEP_MANIFEST_KEYS = frozenset(
    {"scenarios", "algorithms", "seeds", "overrides",
     "threshold", "resolution", "max_scale"}
)

#: Override keys that are per-cell sweep axes (or provenance), never
#: free-form overrides — mirrors the CLI's ``--set`` guard rails.
_RESERVED_OVERRIDES = ("algorithm", "seed", "scenario")


class ManifestError(ValueError):
    """A campaign manifest failed validation (HTTP 4xx, structured body).

    ``code`` is a stable machine-readable slug; ``field`` names the
    offending manifest key (``None`` when the body as a whole is bad).
    """

    def __init__(self, code: str, message: str, field: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field

    def to_dict(self) -> dict:
        error = {"code": self.code, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


def parse_manifest(body: bytes) -> dict:
    """Decode a request body into a manifest mapping.

    Raises :class:`ManifestError` (``body-too-large`` / ``malformed-json``
    / ``malformed-manifest``) instead of letting decode errors escape.
    """
    if len(body) > MAX_BODY_BYTES:
        raise ManifestError(
            "body-too-large",
            f"request body is {len(body)} bytes; the limit is {MAX_BODY_BYTES}",
        )
    try:
        manifest = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ManifestError(
            "malformed-json", f"request body is not valid JSON: {exc}"
        ) from None
    if not isinstance(manifest, dict):
        raise ManifestError(
            "malformed-manifest",
            f"manifest must be a JSON object, got {type(manifest).__name__}",
        )
    return manifest


def _check_algorithms(manifest: Mapping) -> list[str]:
    algorithms = manifest.get("algorithms", ["dsmf"])
    if (
        not isinstance(algorithms, list)
        or not algorithms
        or not all(isinstance(a, str) for a in algorithms)
    ):
        raise ManifestError(
            "invalid-algorithms",
            "algorithms must be a non-empty list of strings",
            field="algorithms",
        )
    if len(algorithms) > MAX_ALGORITHMS:
        raise ManifestError(
            "too-many-algorithms",
            f"{len(algorithms)} algorithms exceed the limit of {MAX_ALGORITHMS}",
            field="algorithms",
        )
    from repro.core.heuristics.registry import algorithm_names

    known = algorithm_names()
    for name in algorithms:
        if name not in known:
            raise ManifestError(
                "unknown-algorithm",
                f"unknown algorithm {name!r}; available: {', '.join(known)}",
                field="algorithms",
            )
    return algorithms


def _check_seeds(manifest: Mapping) -> list[int]:
    seeds = manifest.get("seeds", [1])
    if (
        not isinstance(seeds, list)
        or not seeds
        or not all(isinstance(s, int) and not isinstance(s, bool) for s in seeds)
    ):
        raise ManifestError(
            "invalid-seeds",
            "seeds must be a non-empty list of integers",
            field="seeds",
        )
    if len(seeds) > MAX_SEEDS:
        raise ManifestError(
            "too-many-seeds",
            f"oversized seed list: {len(seeds)} seeds exceed the limit of {MAX_SEEDS}",
            field="seeds",
        )
    if any(s < 0 for s in seeds):
        raise ManifestError(
            "invalid-seeds", "seeds must be non-negative", field="seeds"
        )
    return seeds


def _check_scenario(manifest: Mapping) -> Optional[str]:
    scenario = manifest.get("scenario")
    if scenario is None:
        return None
    from repro.workload.scenarios import scenario_names

    if not isinstance(scenario, str) or scenario not in scenario_names():
        raise ManifestError(
            "unknown-scenario",
            f"unknown scenario {scenario!r}; available: {', '.join(scenario_names())}",
            field="scenario",
        )
    return scenario


def _check_overrides(manifest: Mapping) -> dict:
    overrides = manifest.get("overrides", {})
    if not isinstance(overrides, dict) or not all(
        isinstance(k, str) for k in overrides
    ):
        raise ManifestError(
            "invalid-overrides",
            "overrides must be an object mapping config field names to values",
            field="overrides",
        )
    for key in _RESERVED_OVERRIDES:
        if key in overrides:
            raise ManifestError(
                "invalid-overrides",
                f"override {key!r} is reserved; use the matching top-level "
                "manifest field instead",
                field="overrides",
            )
    return overrides


def manifest_specs(manifest: Mapping) -> "list[RunSpec]":
    """Validate a manifest and expand it into the campaign's run specs.

    The resolution order matches :func:`repro.api.run_campaign`: the
    scenario preset's overrides are applied to the config defaults, the
    manifest's explicit ``overrides`` win over the preset, and the
    (algorithm × seed) grid is stamped per cell.  Any rejection — unknown
    names, bad value types, inverted ranges, duplicate cells — raises
    :class:`ManifestError`.
    """
    if not isinstance(manifest, Mapping):
        raise ManifestError(
            "malformed-manifest",
            f"manifest must be a JSON object, got {type(manifest).__name__}",
        )
    unknown = sorted(set(manifest) - MANIFEST_KEYS)
    if unknown:
        raise ManifestError(
            "unknown-field",
            f"unknown manifest field(s): {', '.join(unknown)}; "
            f"expected a subset of {{{', '.join(sorted(MANIFEST_KEYS))}}}",
            field=unknown[0],
        )
    algorithms = _check_algorithms(manifest)
    seeds = _check_seeds(manifest)
    scenario = _check_scenario(manifest)
    overrides = _check_overrides(manifest)

    from repro.experiments.campaign import sweep_specs
    from repro.experiments.config import ExperimentConfig

    try:
        base = ExperimentConfig()
        if scenario is not None:
            from repro.workload.scenarios import apply_scenario

            base = apply_scenario(base, scenario)
        if overrides:
            base = base.with_(**overrides)
    except TypeError as exc:
        # Unknown field names and type-incompatible values both surface as
        # TypeError from the frozen dataclass / its validation comparisons.
        raise ManifestError(
            "invalid-overrides", f"bad config override: {exc}", field="overrides"
        ) from None
    except ValueError as exc:
        raise ManifestError(
            "invalid-overrides", f"bad config override: {exc}", field="overrides"
        ) from None
    try:
        return sweep_specs(algorithms, seeds, base=base)
    except (TypeError, ValueError) as exc:  # e.g. duplicate sweep cells
        raise ManifestError("invalid-manifest", str(exc)) from None


def sweep_request(manifest: Mapping) -> dict:
    """Validate a ``POST /sweeps`` body into a normalized sweep request.

    Same strictness contract as :func:`manifest_specs`: every rejection —
    unknown keys, bad shapes, unknown scenario/algorithm names, criterion
    values the search cannot use, a trace-replay scenario whose arrival
    rate is fixed by its trace file — raises :class:`ManifestError` before
    anything reaches the worker.  Returns the keyword arguments for
    :func:`repro.experiments.sweep.run_sweep` (plus the validated
    ``seeds``/criterion fields, normalized with defaults applied).
    """
    if not isinstance(manifest, Mapping):
        raise ManifestError(
            "malformed-manifest",
            f"manifest must be a JSON object, got {type(manifest).__name__}",
        )
    unknown = sorted(set(manifest) - SWEEP_MANIFEST_KEYS)
    if unknown:
        raise ManifestError(
            "unknown-field",
            f"unknown sweep manifest field(s): {', '.join(unknown)}; "
            f"expected a subset of {{{', '.join(sorted(SWEEP_MANIFEST_KEYS))}}}",
            field=unknown[0],
        )
    scenarios = manifest.get("scenarios")
    if (
        not isinstance(scenarios, list)
        or not scenarios
        or not all(isinstance(s, str) for s in scenarios)
    ):
        raise ManifestError(
            "invalid-scenarios",
            "scenarios must be a non-empty list of scenario names",
            field="scenarios",
        )
    if len(scenarios) > MAX_SCENARIOS:
        raise ManifestError(
            "too-many-scenarios",
            f"{len(scenarios)} scenarios exceed the limit of {MAX_SCENARIOS}",
            field="scenarios",
        )
    if len(set(scenarios)) != len(scenarios):
        raise ManifestError(
            "invalid-scenarios", "duplicate scenario in sweep request",
            field="scenarios",
        )
    from repro.workload.scenarios import scenario_names

    known = scenario_names()
    for name in scenarios:
        if name not in known:
            raise ManifestError(
                "unknown-scenario",
                f"unknown scenario {name!r}; available: {', '.join(known)}",
                field="scenarios",
            )
    algorithms = manifest.get("algorithms")
    if algorithms is None:
        algorithms = ["dsmf", "dheft", "heft", "smf"]
    else:
        algorithms = _check_algorithms(manifest)
    if len(set(algorithms)) != len(algorithms):
        raise ManifestError(
            "invalid-algorithms", "duplicate algorithm in sweep request",
            field="algorithms",
        )
    seeds = _check_seeds(manifest)
    overrides = _check_overrides(manifest)

    criterion = {}
    for key, default in (
        ("threshold", 0.95), ("resolution", 0.25), ("max_scale", 8.0)
    ):
        value = manifest.get(key, default)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ManifestError(
                "invalid-criterion", f"{key} must be a number", field=key
            )
        criterion[key] = float(value)

    from repro.experiments.sweep import SweepError, SweepSettings, _resolve_base

    try:
        SweepSettings(seeds=tuple(seeds), **criterion)
    except SweepError as exc:
        raise ManifestError("invalid-criterion", str(exc)) from None
    for name in scenarios:
        try:
            _resolve_base(name, None, overrides)
        except SweepError as exc:
            # Trace-replay scenarios: the arrival rate is pinned by the
            # trace file, so there is nothing for workload_scale to sweep.
            raise ManifestError(
                "unsweepable-scenario", str(exc), field="scenarios"
            ) from None
        except (TypeError, ValueError) as exc:
            raise ManifestError(
                "invalid-overrides", f"bad config override: {exc}",
                field="overrides",
            ) from None
    return {
        "scenarios": scenarios,
        "algorithms": algorithms,
        "seeds": seeds,
        "overrides": overrides,
        **criterion,
    }


def result_to_dict(result: "RunResult") -> dict:
    """JSON-safe dump of a :class:`~repro.metrics.collectors.RunResult`.

    Everything the pickled cache entry knows — headline metrics, the
    availability series, per-workflow records, hourly samples and the
    resolved config — plus the determinism ``result_digest`` so a client
    can fingerprint-compare responses across machines.
    """
    from repro.experiments.campaign import result_digest

    # getattr: cache entries pickled before the observability layer have
    # no telemetry slot; old entries must keep deserialising.
    telemetry = getattr(result, "telemetry", None)
    return {
        "telemetry": None if telemetry is None else telemetry.to_dict(),
        "algorithm": result.algorithm,
        "seed": result.seed,
        "n_nodes": result.n_nodes,
        "n_workflows": result.n_workflows,
        "total_time": float(result.total_time),
        "act": float(result.act),
        "ae": float(result.ae),
        "n_done": result.n_done,
        "n_failed": result.n_failed,
        "events_executed": result.events_executed,
        "wall_seconds": float(result.wall_seconds),
        "rss_mean": float(result.rss_mean),
        "n_departures": result.n_departures,
        "n_revivals": result.n_revivals,
        "n_tasks_lost": result.n_tasks_lost,
        "n_tasks_recovered": result.n_tasks_recovered,
        "avg_alive_fraction": float(result.avg_alive_fraction),
        "availability_ae": float(result.availability_ae),
        "result_digest": result_digest(result),
        "config": result.config,
        "records": [
            {
                "wid": r.wid,
                "home_id": r.home_id,
                "n_tasks": r.n_tasks,
                "eft": float(r.eft),
                "submit_time": float(r.submit_time),
                "status": r.status,
                "completion_time": (
                    None if r.completion_time is None else float(r.completion_time)
                ),
                "failure_reason": r.failure_reason,
            }
            for r in result.records
        ],
        "samples": [
            {
                "time": float(s.time),
                "throughput": s.throughput,
                "act": float(s.act),
                "ae": float(s.ae),
                "rss_mean": float(s.rss_mean),
                "alive_nodes": s.alive_nodes,
                "departed": s.departed,
                "revived": s.revived,
            }
            for s in result.samples
        ],
    }
