"""Persistent experiment index: a crash-safe JSON-lines journal.

Every run the service completes is appended to an on-disk journal (one
JSON object per line, flushed and fsynced per record, so a crash can lose
at most the record being written — never corrupt earlier ones).  On
startup the index reloads the journal *and* rebuilds entries for any
cached result the journal does not know about (e.g. runs produced by the
CLI against the same cache directory, or a journal lost to a disk swap),
so ``GET /experiments`` always reflects the content-addressed cache.

Listing semantics: one entry per distinct config hash (the latest record
wins), in first-seen order — resubmitting a manifest refreshes an entry
rather than duplicating it.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional

from repro.faults import NULL_FAULTS

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collectors import RunResult

__all__ = ["ExperimentIndex", "entry_from_result"]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")


def entry_from_result(
    config_hash: str,
    result: "RunResult",
    label: Optional[str] = None,
    campaign_id: Optional[str] = None,
    source: str = "run",
    from_cache: bool = False,
    recorded_at: Optional[float] = None,
) -> dict:
    """Build one index entry (a flat JSON-safe summary) for a finished run."""
    config = result.config if isinstance(result.config, Mapping) else {}
    return {
        "config_hash": config_hash,
        "label": label,
        "campaign_id": campaign_id,
        "source": source,
        "from_cache": bool(from_cache),
        "algorithm": result.algorithm,
        "seed": result.seed,
        "scenario": config.get("scenario"),
        "n_nodes": result.n_nodes,
        "n_workflows": result.n_workflows,
        "n_done": result.n_done,
        "n_failed": result.n_failed,
        "act": float(result.act),
        "ae": float(result.ae),
        "total_time": float(result.total_time),
        "recorded_at": time.time() if recorded_at is None else float(recorded_at),
    }


class ExperimentIndex:
    """Thread-safe persistent index of completed experiments."""

    def __init__(self, path: "str | os.PathLike", faults=NULL_FAULTS):
        self.path = Path(path)
        self.faults = faults
        self._lock = threading.Lock()
        #: config_hash -> latest entry; insertion order = first-seen order.
        self._entries: dict[str, dict] = {}
        #: Journal lines that failed to parse on load (torn tail writes).
        self.skipped_lines = 0
        #: Appends that failed with an IO error (torn writes).  The
        #: in-memory listing keeps the entry; the next append reopens the
        #: journal and terminates the torn tail.
        self.append_errors = 0
        self._fh = None
        self._load()

    # ------------------------------------------------------------- journal
    def _load(self) -> None:
        if not self.path.is_file():
            return
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    self.skipped_lines += 1
                    continue
                if not isinstance(entry, dict) or not isinstance(
                    entry.get("config_hash"), str
                ):
                    self.skipped_lines += 1
                    continue
                self._entries[entry["config_hash"]] = entry

    def _journal(self):
        """The append handle, opened lazily; a torn tail (crash mid-write,
        no trailing newline) is terminated first so the next record starts
        on its own line."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            needs_newline = False
            if self.path.is_file() and self.path.stat().st_size > 0:
                with self.path.open("rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = self.path.open("a", encoding="utf-8")
            if needs_newline:
                self._fh.write("\n")
        return self._fh

    # -------------------------------------------------------------- access
    def record(self, entry: Mapping) -> None:
        """Append one entry to the journal (flush + fsync) and the listing.

        An append IO error (real ``ENOSPC``/``EIO`` or an injected
        ``index.append`` tear) never loses the in-memory entry and never
        propagates — the handle is dropped so the next append reopens the
        journal and terminates the torn tail first.
        """
        entry = dict(entry)
        if not isinstance(entry.get("config_hash"), str):
            raise ValueError("index entries need a string config_hash")
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self._lock:
            try:
                fh = self._journal()
                if (
                    self.faults.enabled
                    and self.faults.check("index.append") is not None
                ):
                    fh.write(line[: max(1, len(line) // 2)])
                    fh.flush()
                    raise OSError("injected torn index append")
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            except OSError:
                self.append_errors += 1
                if self._fh is not None:
                    try:
                        self._fh.close()
                    except OSError:  # pragma: no cover - double-fault close
                        pass
                    self._fh = None
            self._entries[entry["config_hash"]] = entry

    def entries(self) -> list[dict]:
        """Latest entry per config hash, in first-seen order (copies)."""
        with self._lock:
            return [dict(e) for e in self._entries.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, config_hash: str) -> bool:
        with self._lock:
            return config_hash in self._entries

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # ------------------------------------------------------------- rebuild
    def rebuild_from_cache(self, cache_dir: "str | os.PathLike") -> int:
        """Index every cached result the journal doesn't already list.

        Scans ``cache_dir`` for content-addressed ``<hash>.pkl`` entries
        (the :class:`~repro.experiments.campaign.CampaignRunner` layout)
        and appends an entry per unknown hash.  Unreadable or foreign
        pickles are skipped — a rebuild must never take the service down.
        Returns the number of entries added.
        """
        from repro.metrics.collectors import RunResult

        cache_dir = Path(cache_dir)
        if not cache_dir.is_dir():
            return 0
        added = 0
        for path in sorted(cache_dir.glob("*.pkl")):
            key = path.stem
            if not _HASH_RE.match(key) or key in self:
                continue
            try:
                with path.open("rb") as fh:
                    result = pickle.load(fh)
            except Exception:
                continue
            if not isinstance(result, RunResult):
                continue
            self.record(
                entry_from_result(
                    key,
                    result,
                    source="cache-rebuild",
                    from_cache=True,
                    recorded_at=path.stat().st_mtime,
                )
            )
            added += 1
        return added
