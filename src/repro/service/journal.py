"""Service submission journal: campaigns survive a server kill.

The queue executes serially, so a ``SIGKILL`` (OOM, deploy, power loss)
can strand two kinds of campaigns: queued-but-unstarted ones and the one
in flight.  Both are recoverable — every submitted manifest was validated
before it was accepted, and every *finished cell* of the in-flight
campaign is already in the content-addressed cache — all that dies with
the process is the submission bookkeeping.  This journal persists it:

``submitted``
    one per accepted manifest (id, kind, manifest), fsynced before the
    client sees its 202 — an id handed out is an id that survives.
``finished``
    one per terminal transition (``done``/``failed``).

On restart the queue replays the journal: every submitted-but-unfinished
campaign is recreated under its **original id** (clients polling that id
just see it go ``queued -> running -> done`` again) and re-enqueued in
submission order.  Re-executing the in-flight campaign is safe because
cells are cached exactly-once by config hash: journaled-done cells replay
as cache hits, only the genuinely unfinished tail runs.

Same crash-safety discipline as the experiment index: JSON lines, flush +
fsync per record, torn tails skipped on load and terminated on reopen.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Mapping, Optional

__all__ = ["ServiceJournal"]

_ID_RE = re.compile(r"^c(\d{6,})$")


class ServiceJournal:
    """Thread-safe append journal of campaign submissions and completions."""

    def __init__(self, path: "str | os.PathLike"):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = None
        #: Unparseable lines skipped on load (torn tail writes).
        self.skipped_lines = 0
        #: Highest numeric campaign id seen in the journal — the queue
        #: seeds its sequence past it so resumed ids are never reissued.
        self.max_seq = 0
        #: Submission-ordered ``{"id", "kind", "manifest"}`` for every
        #: campaign with no terminal record.
        self.unfinished: list[dict] = []
        self._load()

    # ------------------------------------------------------------- loading
    def _load(self) -> None:
        if not self.path.is_file():
            return
        open_by_id: dict[str, dict] = {}
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    self.skipped_lines += 1
                    continue
                if not isinstance(rec, dict) or not isinstance(rec.get("id"), str):
                    self.skipped_lines += 1
                    continue
                cid = rec["id"]
                m = _ID_RE.match(cid)
                if m:
                    self.max_seq = max(self.max_seq, int(m.group(1)))
                event = rec.get("event")
                if event == "submitted" and isinstance(rec.get("manifest"), dict):
                    open_by_id[cid] = {
                        "id": cid,
                        "kind": rec.get("kind") or "campaign",
                        "manifest": rec["manifest"],
                    }
                elif event == "finished":
                    open_by_id.pop(cid, None)
                else:
                    self.skipped_lines += 1
        self.unfinished = list(open_by_id.values())

    # ------------------------------------------------------------- writing
    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            needs_newline = False
            if self.path.is_file() and self.path.stat().st_size > 0:
                with self.path.open("rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = self.path.open("a", encoding="utf-8")
            if needs_newline:
                self._fh.write("\n")
        return self._fh

    def _append(self, record: Mapping) -> None:
        line = json.dumps(dict(record), sort_keys=True, separators=(",", ":"))
        with self._lock:
            try:
                fh = self._handle()
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            except OSError:
                # Journal IO failure must never fail a submission the
                # queue already accepted; the next append reopens and
                # terminates any torn tail.
                if self._fh is not None:
                    try:
                        self._fh.close()
                    except OSError:  # pragma: no cover - double-fault close
                        pass
                    self._fh = None

    def submitted(self, cid: str, kind: str, manifest: Mapping) -> None:
        self._append(
            {"event": "submitted", "id": cid, "kind": kind, "manifest": dict(manifest)}
        )

    def finished(self, cid: str, status: str) -> None:
        self._append({"event": "finished", "id": cid, "status": status})

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
