"""The submission queue: serial campaign execution over the shared cache.

One worker thread drains submitted campaigns in FIFO order; each campaign
fans out through :class:`~repro.experiments.campaign.CampaignRunner`'s
process pool.  Serial campaign execution is a deliberate design choice,
not a limitation: together with the content-addressed cache (and the
runner's own within-sweep dedup) it gives the service its coalescing
guarantee — when N clients concurrently submit overlapping manifests,
every distinct config hash is simulated **exactly once**; later campaigns
replay the overlap from cache.  Parallelism lives inside a campaign
(``jobs`` worker processes), where the runner already dedupes.

Campaign state transitions: ``queued -> running -> done | failed``; per
config the run states are ``pending -> running -> done`` (cache hits jump
straight to ``done``).
"""

from __future__ import annotations

import queue as _queuemod
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.experiments.campaign import (
    CampaignError,
    CampaignRunner,
    config_hash,
)
from repro.faults import NULL_FAULTS
from repro.service.index import ExperimentIndex, entry_from_result
from repro.service.schemas import manifest_specs, sweep_request

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.campaign import CampaignRun, RunSpec
    from repro.service.journal import ServiceJournal

__all__ = ["CampaignQueue", "CampaignState", "QueueFullError", "RunState"]


class QueueFullError(RuntimeError):
    """The queue is at its bounded depth; try again after ``retry_after``."""

    def __init__(self, depth: int, retry_after: float):
        self.depth = depth
        self.retry_after = retry_after
        super().__init__(
            f"queue is full ({depth} campaigns queued or running); "
            f"retry after {retry_after:g}s"
        )


@dataclass
class RunState:
    """Live status of one (label, config) cell of a campaign."""

    label: str
    config_hash: str
    status: str = "pending"  # pending | running | done
    from_cache: bool = False
    wall_seconds: float = 0.0
    act: Optional[float] = None
    ae: Optional[float] = None
    n_done: Optional[int] = None
    n_workflows: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "config_hash": self.config_hash,
            "status": self.status,
            "from_cache": self.from_cache,
            "wall_seconds": self.wall_seconds,
            "act": self.act,
            "ae": self.ae,
            "n_done": self.n_done,
            "n_workflows": self.n_workflows,
        }


@dataclass
class CampaignState:
    """Live status of one submitted campaign.

    ``version`` increments on every observable mutation (status
    transitions and per-run updates) — the long-poll in
    :meth:`CampaignQueue.get` returns as soon as it changes.
    """

    id: str
    manifest: dict
    runs: list[RunState] = field(default_factory=list)
    status: str = "queued"  # queued | running | done | failed
    #: ``campaign`` (fixed grid, runs known at submit time) or ``sweep``
    #: (adaptive capacity search, runs appended as probes are chosen).
    kind: str = "campaign"
    #: The capacity-envelope report, set when a sweep finishes.
    report: Optional[dict] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    version: int = 0
    #: True when this campaign was recreated from the submission journal
    #: after a server restart (it keeps its original id).
    resumed: bool = False

    def to_dict(self, with_runs: bool = True) -> dict:
        completed = sum(1 for r in self.runs if r.status == "done")
        out = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "error": self.error,
            "manifest": self.manifest,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": {"completed": completed, "total": len(self.runs)},
            "n_cached": sum(1 for r in self.runs if r.from_cache),
            "version": self.version,
            "resumed": self.resumed,
        }
        if with_runs:
            out["runs"] = [r.to_dict() for r in self.runs]
        if self.report is not None:
            out["report"] = self.report
        return out


class CampaignQueue:
    """Accept manifests, execute them serially, expose poll-able status.

    Parameters
    ----------
    cache_dir:
        The content-addressed result cache shared with the CLI.
    index:
        The persistent experiment index; every completed run (cache hits
        included) is recorded there.
    jobs:
        Worker processes per campaign (the fan-out *inside* a campaign).
    runner:
        Injectable per-config work function (tests use a counting stub);
        forwarded to :class:`~repro.experiments.campaign.CampaignRunner`.
    use_cache:
        Disable only in diagnostics — without the cache the coalescing
        guarantee degrades to within-campaign dedup.
    journal:
        Optional :class:`~repro.service.journal.ServiceJournal`.  When
        given, accepted submissions are journaled before the client sees
        them, and any submitted-but-unfinished campaign from a previous
        process is recreated (original id, ``resumed`` flag) and
        re-enqueued — finished cells replay from cache.
    max_pending:
        Overload bound: when this many campaigns are queued or running, a
        new submission raises :class:`QueueFullError` (the HTTP layer
        turns it into ``429`` + ``Retry-After``) instead of growing the
        backlog without limit.  ``None`` = unbounded.
    faults:
        A :class:`~repro.faults.FaultPlan` forwarded to every runner
        (default: the zero-overhead null plan).
    """

    def __init__(
        self,
        cache_dir,
        index: ExperimentIndex,
        jobs: int = 1,
        runner: Optional[Callable] = None,
        use_cache: bool = True,
        mp_context: Optional[str] = None,
        journal: "Optional[ServiceJournal]" = None,
        max_pending: Optional[int] = None,
        faults=NULL_FAULTS,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.cache_dir = cache_dir
        self.index = index
        self.jobs = jobs
        self.runner = runner
        self.use_cache = use_cache
        self.mp_context = mp_context
        self.journal = journal
        self.max_pending = max_pending
        self.faults = faults
        #: Robustness counters aggregated across every campaign runner
        #: (retries, pool rebuilds, cache errors) — exposed on /metrics.
        self.stats: dict = {}
        self._queue: _queuemod.Queue = _queuemod.Queue()
        self._campaigns: dict[str, CampaignState] = {}
        self._lock = threading.RLock()
        #: Long-poll wakeups: every state mutation bumps the campaign's
        #: ``version`` and notifies all waiters (see :meth:`get`).
        self._changed = threading.Condition(self._lock)
        self._seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if journal is not None:
            self._seq = journal.max_seq
            self._replay(journal.unfinished)

    def _replay(self, unfinished: "list[dict]") -> None:
        """Recreate journaled unfinished campaigns under their original ids.

        Manifests were validated at submission; one that no longer
        validates (schema drift across an upgrade) is journaled as failed
        rather than wedging the queue.
        """
        for entry in unfinished:
            cid, kind, manifest = entry["id"], entry["kind"], entry["manifest"]
            try:
                if kind == "sweep":
                    payload: object = sweep_request(manifest)
                    runs: list[RunState] = []
                else:
                    specs = manifest_specs(manifest)
                    payload = specs
                    runs = [RunState(s.label, config_hash(s.config)) for s in specs]
            except Exception as exc:
                if self.journal is not None:
                    self.journal.finished(cid, "failed")
                self._campaigns[cid] = CampaignState(
                    id=cid,
                    manifest=dict(manifest),
                    kind=kind,
                    status="failed",
                    error=f"resume: manifest no longer valid: {exc}",
                    submitted_at=time.time(),
                    resumed=True,
                )
                continue
            self._campaigns[cid] = CampaignState(
                id=cid,
                manifest=dict(manifest),
                kind=kind,
                runs=runs,
                submitted_at=time.time(),
                resumed=True,
            )
            self._queue.put((kind, cid, payload))

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._worker, name="repro-service-worker", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Stop the worker after the campaign in flight (if any) finishes."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # ----------------------------------------------------------- submission
    def submit(self, manifest: Mapping) -> dict:
        """Validate a manifest, enqueue the campaign, return its status.

        Raises :class:`~repro.service.schemas.ManifestError` on any
        validation failure — nothing invalid ever reaches the worker —
        and :class:`QueueFullError` when the bounded queue is at depth.
        """
        specs = manifest_specs(manifest)
        runs = [RunState(s.label, config_hash(s.config)) for s in specs]
        with self._lock:
            self._check_capacity()
            self._seq += 1
            cid = f"c{self._seq:06d}"
            state = CampaignState(
                id=cid,
                manifest=dict(manifest),
                runs=runs,
                submitted_at=time.time(),
            )
            self._campaigns[cid] = state
            snapshot = state.to_dict()
        if self.journal is not None:
            self.journal.submitted(cid, "campaign", manifest)
        self._queue.put(("campaign", cid, specs))
        return snapshot

    def submit_sweep(self, manifest: Mapping) -> dict:
        """Validate a sweep manifest, enqueue the capacity sweep.

        Unlike :meth:`submit`, the run list starts empty: the adaptive
        search *chooses* its probes as earlier ones complete, so
        :class:`RunState` entries are appended live (each probe config is
        one run, exactly as cached).  The finished envelope report lands
        on the state's ``report`` field.  Raises
        :class:`~repro.service.schemas.ManifestError` on any validation
        failure — including trace-replay scenarios, whose arrival rate a
        sweep cannot scale — and :class:`QueueFullError` at depth.
        """
        request = sweep_request(manifest)
        with self._lock:
            self._check_capacity()
            self._seq += 1
            cid = f"c{self._seq:06d}"
            state = CampaignState(
                id=cid,
                manifest=dict(manifest),
                kind="sweep",
                submitted_at=time.time(),
            )
            self._campaigns[cid] = state
            snapshot = state.to_dict()
        if self.journal is not None:
            self.journal.submitted(cid, "sweep", manifest)
        self._queue.put(("sweep", cid, request))
        return snapshot

    def _check_capacity(self) -> None:
        """Reject a submission when the backlog is at ``max_pending``.

        Called under ``self._lock``.  ``Retry-After`` scales with the
        backlog: one serial slot frees per campaign, so a deeper queue
        advertises a longer wait (capped at 30 s).
        """
        if self.max_pending is None:
            return
        active = sum(
            1
            for s in self._campaigns.values()
            if s.status in ("queued", "running")
        )
        if active >= self.max_pending:
            raise QueueFullError(active, min(30.0, float(max(1, active))))

    def get(
        self,
        campaign_id: str,
        wait: float = 0.0,
        since: Optional[int] = None,
    ) -> Optional[dict]:
        """One campaign's status; ``None`` for an unknown id.

        ``wait > 0`` long-polls: the call blocks up to ``wait`` seconds,
        returning early as soon as the campaign's state changes (any
        ``version`` bump) or it is already terminal (``done``/``failed``)
        — a client sees progress the moment it happens instead of on its
        next poll tick.

        ``since`` is the client's last-observed ``version``.  Without it
        the poll waits for a change relative to the state *at call time*,
        which loses any bump that landed between the client's previous
        response and this request — the client then parks for the full
        ``wait`` despite a transition having already happened.  With
        ``since`` given, such a poll returns immediately.
        """
        deadline = time.monotonic() + wait
        with self._changed:
            state = self._campaigns.get(campaign_id)
            if state is None:
                return None
            seen = state.version if since is None else since
            while (
                wait > 0
                and state.version == seen
                and state.status not in ("done", "failed")
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._changed.wait(remaining):
                    break
            return state.to_dict()

    def list(self) -> list[dict]:
        """Submission-ordered campaign summaries (runs omitted)."""
        with self._lock:
            return [s.to_dict(with_runs=False) for s in self._campaigns.values()]

    def status_counts(self) -> dict[str, int]:
        """Campaign counts per lifecycle state (for ``GET /metrics``)."""
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        with self._lock:
            for state in self._campaigns.values():
                counts[state.status] = counts.get(state.status, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._campaigns)

    # ------------------------------------------------------------- worker
    def _worker(self) -> None:
        # Graceful drain: the stop check precedes each dequeue, so a
        # SIGTERM finishes the campaign in flight but leaves the queued
        # backlog to the submission journal (replayed on next start)
        # instead of racing to drain it inside the shutdown window.
        while not self._stop.is_set():
            try:
                kind, cid, payload = self._queue.get(timeout=0.2)
            except _queuemod.Empty:
                continue
            try:
                if kind == "sweep":
                    self._process_sweep(cid, payload)
                else:
                    self._process(cid, payload)
            finally:
                self._queue.task_done()

    def _bump(self, state: CampaignState) -> None:
        """Mark a state mutation: bump ``version``, wake long-pollers.

        Callers hold ``self._lock`` (the condition shares it).
        """
        state.version += 1
        self._changed.notify_all()

    def _set_run(self, cid: str, label: str, **updates) -> None:
        with self._lock:
            state = self._campaigns[cid]
            for run in state.runs:
                if run.label == label:
                    for key, value in updates.items():
                        setattr(run, key, value)
                    self._bump(state)
                    return

    def _upsert_run(self, cid: str, label: str, config_hash: str, **updates) -> None:
        """Update a run state, appending it first if unknown.

        Sweep probes are chosen adaptively, so their run states cannot be
        pre-declared at submission like a campaign's fixed grid.
        """
        with self._lock:
            state = self._campaigns[cid]
            for run in state.runs:
                if run.label == label:
                    break
            else:
                run = RunState(label, config_hash)
                state.runs.append(run)
            for key, value in updates.items():
                setattr(run, key, value)
            self._bump(state)

    def _process(self, cid: str, specs: "list[RunSpec]") -> None:
        with self._lock:
            state = self._campaigns[cid]
            state.status = "running"
            state.started_at = time.time()
            self._bump(state)

        def on_start(spec: "RunSpec", key: str) -> None:
            self._set_run(cid, spec.label, status="running")

        def on_done(run: "CampaignRun") -> None:
            self._set_run(
                cid,
                run.label,
                status="done",
                from_cache=run.from_cache,
                wall_seconds=run.wall_seconds,
                act=float(run.result.act),
                ae=float(run.result.ae),
                n_done=run.result.n_done,
                n_workflows=run.result.n_workflows,
            )
            self.index.record(
                entry_from_result(
                    run.cache_key,
                    run.result,
                    label=run.label,
                    campaign_id=cid,
                    source="service",
                    from_cache=run.from_cache,
                )
            )

        kwargs: dict = {}
        if self.runner is not None:
            kwargs["runner"] = self.runner
        runner = CampaignRunner(
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            use_cache=self.use_cache,
            mp_context=self.mp_context,
            progress=on_done,
            on_start=on_start,
            faults=self.faults,
            stats=self.stats,
            **kwargs,
        )
        try:
            runner.run(specs)
        except CampaignError as exc:
            with self._lock:
                state.status = "failed"
                state.error = str(exc)
        except Exception as exc:  # pragma: no cover - defensive: never wedge
            with self._lock:
                state.status = "failed"
                state.error = f"{type(exc).__name__}: {exc}"
        else:
            with self._lock:
                state.status = "done"
        finally:
            with self._lock:
                state.finished_at = time.time()
                final = state.status
                self._bump(state)
            if self.journal is not None:
                self.journal.finished(cid, final)

    def _process_sweep(self, cid: str, request: dict) -> None:
        from repro.experiments.sweep import SweepError, SweepSettings, run_sweep

        with self._lock:
            state = self._campaigns[cid]
            state.status = "running"
            state.started_at = time.time()
            self._bump(state)

        def on_start(spec: "RunSpec", key: str) -> None:
            self._upsert_run(cid, spec.label, key, status="running")

        def on_done(run: "CampaignRun") -> None:
            self._upsert_run(
                cid,
                run.label,
                run.cache_key,
                status="done",
                from_cache=run.from_cache,
                wall_seconds=run.wall_seconds,
                act=float(run.result.act),
                ae=float(run.result.ae),
                n_done=run.result.n_done,
                n_workflows=run.result.n_workflows,
            )
            self.index.record(
                entry_from_result(
                    run.cache_key,
                    run.result,
                    label=run.label,
                    campaign_id=cid,
                    source="service",
                    from_cache=run.from_cache,
                )
            )

        kwargs: dict = {}
        if self.runner is not None:
            kwargs["runner"] = self.runner
        try:
            report = run_sweep(
                request["scenarios"],
                request["algorithms"],
                settings=SweepSettings(
                    threshold=request["threshold"],
                    resolution=request["resolution"],
                    max_scale=request["max_scale"],
                    seeds=tuple(request["seeds"]),
                ),
                jobs=self.jobs,
                cache_dir=self.cache_dir,
                use_cache=self.use_cache,
                mp_context=self.mp_context,
                run_progress=on_done,
                run_on_start=on_start,
                faults=self.faults,
                stats=self.stats,
                **kwargs,
                **request["overrides"],
            )
        except (SweepError, CampaignError) as exc:
            with self._lock:
                state.status = "failed"
                state.error = str(exc)
        except Exception as exc:  # pragma: no cover - defensive: never wedge
            with self._lock:
                state.status = "failed"
                state.error = f"{type(exc).__name__}: {exc}"
        else:
            with self._lock:
                state.status = "done"
                state.report = report
        finally:
            with self._lock:
                state.finished_at = time.time()
                final = state.status
                self._bump(state)
            if self.journal is not None:
                self.journal.finished(cid, final)
