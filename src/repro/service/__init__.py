"""Simulation-as-a-service: an HTTP front end over the campaign layer.

The ROADMAP's north star — serving heavy traffic rather than one-shot CLI
invocations — needs a long-running process in front of
:class:`~repro.experiments.campaign.CampaignRunner` and its
content-addressed result cache.  This package provides it with zero new
dependencies (stdlib ``http.server`` only):

* :mod:`repro.service.schemas` — JSON campaign *manifests* (scenario ×
  algorithms × seeds × overrides) validated through
  :class:`~repro.experiments.config.ExperimentConfig`, plus the
  :class:`~repro.metrics.collectors.RunResult` JSON serializer;
* :mod:`repro.service.index` — a persistent on-disk experiment index
  (crash-safe JSON-lines journal, rebuilt from the cache directory on
  startup);
* :mod:`repro.service.queue` — the submission queue: one worker thread
  drains campaigns serially and fans each out through the existing
  multiprocessing pool, which (with the shared cache) guarantees that
  overlapping manifests coalesce to **one simulation run per distinct
  config hash**;
* :mod:`repro.service.app` — the HTTP API (``repro serve``):
  ``POST /campaigns``, ``GET /campaigns/{id}`` (with ``?wait=`` long
  polling), ``GET /results/{hash}``, ``GET /experiments``,
  ``GET /healthz``, and a Prometheus-text ``GET /metrics``;
* :mod:`repro.service.client` — a thin stdlib client used by CI and the
  concurrent-submission stress benchmark.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.schemas import ManifestError, manifest_specs, result_to_dict

__all__ = [
    "ManifestError",
    "ServiceClient",
    "ServiceError",
    "manifest_specs",
    "result_to_dict",
]
