"""The ``repro serve`` HTTP API (stdlib ``http.server``, zero new deps).

Routes (all JSON)::

    GET  /healthz            liveness + index/queue counters
    POST /campaigns          submit a campaign manifest -> 202 + id/hashes
    GET  /campaigns          list submitted campaigns
    GET  /campaigns/{id}     poll one campaign (per-config progress)
    GET  /results/{hash}     a cached RunResult by config hash
    GET  /experiments        the persistent experiment index

Request handling runs on :class:`~http.server.ThreadingHTTPServer` (one
thread per connection) while simulation work stays on the queue's single
worker thread — submissions return immediately with ``202 Accepted`` and
clients poll.  Every error path returns a structured JSON body
(``{"error": {"code", "message", ...}}``); manifest validation failures
are 4xx by construction and can never wedge the worker.
"""

from __future__ import annotations

import json
import re
import signal
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional

from repro._version import __version__
from repro.experiments.campaign import default_cache_dir, load_cached_result
from repro.service.index import ExperimentIndex
from repro.service.queue import CampaignQueue
from repro.service.schemas import ManifestError, parse_manifest, result_to_dict

__all__ = ["ServiceServer", "ServiceState", "build_server", "serve"]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")
_CAMPAIGN_RE = re.compile(r"^/campaigns/([A-Za-z0-9_-]+)$")
_RESULT_RE = re.compile(r"^/results/([0-9a-zA-Z]+)$")


class ServiceState:
    """Shared service state: the cache, the index, and the queue."""

    def __init__(
        self,
        cache_dir=None,
        index_path=None,
        jobs: int = 1,
        runner: Optional[Callable] = None,
        use_cache: bool = True,
        mp_context: Optional[str] = None,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        if index_path is None:
            index_path = self.cache_dir / "experiments.jsonl"
        self.index = ExperimentIndex(index_path)
        #: Cache entries the journal didn't know about (CLI runs against
        #: the same cache dir, or a fresh/lost journal) — recovered here so
        #: the index survives restarts even without its journal.
        self.index_rebuilt = self.index.rebuild_from_cache(self.cache_dir)
        self.queue = CampaignQueue(
            cache_dir=self.cache_dir,
            index=self.index,
            jobs=jobs,
            runner=runner,
            use_cache=use_cache,
            mp_context=mp_context,
        )

    def start(self) -> None:
        self.queue.start()

    def close(self, timeout: Optional[float] = 30.0) -> None:
        self.queue.stop(timeout)
        self.index.close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ServiceServer"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, code: str, message: str, field: Optional[str] = None
    ) -> None:
        error = {"code": code, "message": message}
        if field is not None:
            error["field"] = field
        self._send_json(status, {"error": error})

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        state = self.server.state
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/healthz", "/"):
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    "campaigns": len(state.queue),
                    "experiments": len(state.index),
                    "index_rebuilt": state.index_rebuilt,
                },
            )
            return
        if path == "/experiments":
            entries = state.index.entries()
            self._send_json(200, {"count": len(entries), "experiments": entries})
            return
        if path == "/campaigns":
            campaigns = state.queue.list()
            self._send_json(200, {"count": len(campaigns), "campaigns": campaigns})
            return
        match = _CAMPAIGN_RE.match(path)
        if match:
            record = state.queue.get(match.group(1))
            if record is None:
                self._send_error_json(
                    404, "not-found", f"no campaign {match.group(1)!r}"
                )
            else:
                self._send_json(200, record)
            return
        match = _RESULT_RE.match(path)
        if match:
            key = match.group(1)
            if not _HASH_RE.match(key):
                self._send_error_json(
                    400,
                    "invalid-hash",
                    "config hashes are 64 lowercase hex characters",
                )
                return
            result = load_cached_result(key, cache_dir=state.cache_dir)
            if result is None:
                self._send_error_json(
                    404, "not-found", f"no cached result for config hash {key}"
                )
                return
            payload = result_to_dict(result)
            payload["config_hash"] = key
            self._send_json(200, payload)
            return
        self._send_error_json(404, "not-found", f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        state = self.server.state
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/campaigns":
            self._send_error_json(404, "not-found", f"no route for POST {path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._send_error_json(
                411, "length-required", "POST /campaigns needs a Content-Length"
            )
            return
        body = self.rfile.read(length)
        try:
            manifest = parse_manifest(body)
            record = state.queue.submit(manifest)
        except ManifestError as exc:
            status = 413 if exc.code == "body-too-large" else 400
            self._send_error_json(status, exc.code, exc.message, exc.field)
            return
        record["url"] = f"/campaigns/{record['id']}"
        self._send_json(202, record)


class ServiceServer(ThreadingHTTPServer):
    """One thread per connection; simulation stays on the queue worker."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], state: ServiceState, verbose: bool = False):
        self.state = state
        self.verbose = verbose
        super().__init__(address, _Handler)


def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    **state_kwargs,
) -> ServiceServer:
    """Construct the server and start the queue worker (``port=0`` binds an
    ephemeral port; read it back from ``server.server_address``)."""
    state = ServiceState(**state_kwargs)
    server = ServiceServer((host, port), state, verbose=verbose)
    state.start()
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    verbose: bool = False,
    **state_kwargs,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns the exit code.

    Prints one ``listening on http://...`` line once the socket is bound,
    so wrappers (CI) can wait for readiness; shuts the queue down cleanly
    on the way out.
    """
    server = build_server(host=host, port=port, verbose=verbose, **state_kwargs)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro service listening on http://{bound_host}:{bound_port} "
        f"(cache {server.state.cache_dir}, index rebuilt "
        f"{server.state.index_rebuilt} entr{'y' if server.state.index_rebuilt == 1 else 'ies'})",
        flush=True,
    )

    def _terminate(signum, frame):  # noqa: ANN001
        raise SystemExit(0)

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        server.state.close()
    return 0
