"""The ``repro serve`` HTTP API (stdlib ``http.server``, zero new deps).

Routes (JSON unless noted)::

    GET  /healthz            liveness + index/queue counters
    POST /campaigns          submit a campaign manifest -> 202 + id/hashes
    POST /sweeps             submit a capacity-sweep manifest -> 202 + id;
                             progress and the finished envelope report are
                             polled through GET /campaigns/{id} (kind
                             "sweep"; probe runs appear as they are chosen)
    GET  /campaigns          list submitted campaigns
    GET  /campaigns/{id}     poll one campaign (per-config progress);
                             ``?wait=<secs>`` long-polls: the response is
                             held until the campaign changes state or the
                             wait (capped at 30s) elapses.  Pass
                             ``&version=<n>`` (the ``version`` of the last
                             response seen) so a change that landed between
                             two polls returns immediately instead of
                             parking for the full wait
    GET  /results/{hash}     a cached RunResult by config hash
    GET  /experiments        the persistent experiment index
    GET  /metrics            Prometheus text exposition (request counters,
                             per-route latency, campaign/index gauges)

Request handling runs on :class:`~http.server.ThreadingHTTPServer` (one
thread per connection) while simulation work stays on the queue's single
worker thread — submissions return immediately with ``202 Accepted`` and
clients poll (or long-poll).  Every error path returns a structured JSON
body (``{"error": {"code", "message", ...}}``); manifest validation
failures are 4xx by construction and can never wedge the worker.  With
``--max-pending`` the backlog is bounded: submissions beyond it get
``429`` + a ``Retry-After`` header instead of unbounded queueing.
Accepted submissions are journaled (``<cache_dir>/service.jsonl``), so a
killed server resumes its unfinished campaigns — original ids, finished
cells replayed from cache — on the next start against the same dirs.
"""

from __future__ import annotations

import json
import re
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.experiments.campaign import default_cache_dir, load_cached_result
from repro.faults import NULL_FAULTS
from repro.obs.telemetry import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.service.index import ExperimentIndex
from repro.service.journal import ServiceJournal
from repro.service.queue import CampaignQueue, QueueFullError
from repro.service.schemas import ManifestError, parse_manifest, result_to_dict

__all__ = [
    "MAX_WAIT_SECONDS",
    "ServiceMetrics",
    "ServiceServer",
    "ServiceState",
    "build_server",
    "serve",
]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")
_CAMPAIGN_RE = re.compile(r"^/campaigns/([A-Za-z0-9_-]+)$")
_RESULT_RE = re.compile(r"^/results/([0-9a-zA-Z]+)$")

#: Long-poll cap for ``GET /campaigns/{id}?wait=``: bounds how long one
#: handler thread can be parked, so a slow client can't pin threads for
#: arbitrary durations.  Clients re-issue the request to keep waiting.
MAX_WAIT_SECONDS = 30.0


class ServiceMetrics:
    """Thread-safe HTTP request counters for ``GET /metrics``.

    Tracks request totals by (method, route template, status) and a
    latency sum/count per route — enough for rate, error-rate, and mean
    latency panels without any histogram dependency.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[tuple[str, str, str], int] = {}
        self._latency: dict[str, list[float]] = {}  # route -> [count, sum]

    def observe(self, method: str, route: str, status: int, seconds: float) -> None:
        key = (method, route, str(status))
        with self._lock:
            self._requests[key] = self._requests.get(key, 0) + 1
            slot = self._latency.setdefault(route, [0.0, 0.0])
            slot[0] += 1
            slot[1] += seconds

    def families(self) -> list[tuple]:
        """Request-level metric families for ``render_prometheus``."""
        with self._lock:
            requests = dict(self._requests)
            latency = {route: list(slot) for route, slot in self._latency.items()}
        return [
            (
                "repro_http_requests_total",
                "counter",
                "HTTP requests served, by method/route/status",
                [
                    ({"method": m, "route": r, "status": s}, float(n))
                    for (m, r, s), n in sorted(requests.items())
                ],
            ),
            (
                "repro_http_request_seconds_count",
                "counter",
                "HTTP requests timed, by route",
                [({"route": r}, slot[0]) for r, slot in sorted(latency.items())],
            ),
            (
                "repro_http_request_seconds_sum",
                "counter",
                "total HTTP request handling time, by route",
                [({"route": r}, slot[1]) for r, slot in sorted(latency.items())],
            ),
        ]


def _route_label(method: str, path: str) -> str:
    """Fold a concrete request path into its route template.

    Keeps the ``/metrics`` label set bounded — per-id paths would
    otherwise mint one label value per campaign/result ever requested.
    """
    if path in ("/", "/healthz"):
        return "/healthz"
    if path in ("/experiments", "/campaigns", "/metrics", "/sweeps"):
        return path
    if _CAMPAIGN_RE.match(path):
        return "/campaigns/{id}"
    if _RESULT_RE.match(path):
        return "/results/{hash}"
    return "(unmatched)"


class ServiceState:
    """Shared service state: the cache, the index, the journal, the queue.

    ``journal_path`` defaults to ``<cache_dir>/service.jsonl`` — restart
    the service on the same directories and every submitted-but-unfinished
    campaign resumes under its original id.  ``max_pending`` bounds the
    backlog (submissions beyond it get 429 + ``Retry-After``); ``faults``
    is the injection plan (default: the zero-overhead null plan).
    """

    def __init__(
        self,
        cache_dir=None,
        index_path=None,
        jobs: int = 1,
        runner: Optional[Callable] = None,
        use_cache: bool = True,
        mp_context: Optional[str] = None,
        journal_path=None,
        max_pending: Optional[int] = None,
        faults=NULL_FAULTS,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        if index_path is None:
            index_path = self.cache_dir / "experiments.jsonl"
        self.faults = faults
        self.index = ExperimentIndex(index_path, faults=faults)
        #: Cache entries the journal didn't know about (CLI runs against
        #: the same cache dir, or a fresh/lost journal) — recovered here so
        #: the index survives restarts even without its journal.
        self.index_rebuilt = self.index.rebuild_from_cache(self.cache_dir)
        self.metrics = ServiceMetrics()
        if journal_path is None:
            journal_path = self.cache_dir / "service.jsonl"
        self.journal = ServiceJournal(journal_path)
        self.queue = CampaignQueue(
            cache_dir=self.cache_dir,
            index=self.index,
            jobs=jobs,
            runner=runner,
            use_cache=use_cache,
            mp_context=mp_context,
            journal=self.journal,
            max_pending=max_pending,
            faults=faults,
        )
        #: Campaigns replayed from the submission journal at startup.
        self.resumed_campaigns = len(self.journal.unfinished)

    def start(self) -> None:
        self.queue.start()

    def close(self, timeout: Optional[float] = 30.0) -> None:
        self.queue.stop(timeout)
        self.index.close()
        self.journal.close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ServiceServer"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[dict] = None,
    ) -> None:
        self._status = status  # recorded by the request-metrics wrapper
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json",
            headers=headers,
        )

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        field: Optional[str] = None,
        headers: Optional[dict] = None,
    ) -> None:
        error = {"code": code, "message": message}
        if field is not None:
            error["field"] = field
        self._send_json(status, {"error": error}, headers=headers)

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._timed("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._timed("POST", self._route_post)

    def _timed(self, method: str, route_fn: Callable[[str, dict], None]) -> None:
        """Dispatch one request, recording count + latency for /metrics.

        The ``http.*`` fault sites live here, ahead of routing: an
        injected ``http.slow`` stalls the response, an injected
        ``http.reset`` drops the connection without one (recorded with
        status 0) — what a client sees from a server dying mid-request.
        """
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        self._status = 500  # overwritten by _send_body on any response
        t0 = time.perf_counter()
        try:
            faults = self.server.state.faults
            if faults.enabled:
                spec = faults.check("http.slow")
                if spec is not None:
                    time.sleep(spec.delay)
                if faults.check("http.reset") is not None:
                    self._status = 0
                    self.close_connection = True
                    try:
                        self.connection.shutdown(socket.SHUT_RDWR)
                    except OSError:  # pragma: no cover - already gone
                        pass
                    return
            route_fn(path, query)
        finally:
            self.server.state.metrics.observe(
                method, _route_label(method, path), self._status,
                time.perf_counter() - t0,
            )

    def _route_get(self, path: str, query: dict) -> None:
        state = self.server.state
        if path in ("/healthz", "/"):
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    "campaigns": len(state.queue),
                    "experiments": len(state.index),
                    "index_rebuilt": state.index_rebuilt,
                    "resumed_campaigns": state.resumed_campaigns,
                },
            )
            return
        if path == "/experiments":
            entries = state.index.entries()
            self._send_json(200, {"count": len(entries), "experiments": entries})
            return
        if path == "/campaigns":
            campaigns = state.queue.list()
            self._send_json(200, {"count": len(campaigns), "campaigns": campaigns})
            return
        if path == "/metrics":
            self._send_body(
                200, self._render_metrics().encode("utf-8"), PROMETHEUS_CONTENT_TYPE
            )
            return
        match = _CAMPAIGN_RE.match(path)
        if match:
            try:
                wait = float(query.get("wait", ["0"])[0])
            except ValueError:
                self._send_error_json(
                    400, "invalid-wait",
                    "wait must be a number of seconds", field="wait",
                )
                return
            if wait < 0:
                self._send_error_json(
                    400, "invalid-wait", "wait must be >= 0", field="wait"
                )
                return
            since = None
            if "version" in query:
                try:
                    since = int(query["version"][0])
                except ValueError:
                    self._send_error_json(
                        400, "invalid-version",
                        "version must be an integer (the version field of "
                        "the last response seen)", field="version",
                    )
                    return
            record = state.queue.get(
                match.group(1), wait=min(wait, MAX_WAIT_SECONDS), since=since
            )
            if record is None:
                self._send_error_json(
                    404, "not-found", f"no campaign {match.group(1)!r}"
                )
            else:
                self._send_json(200, record)
            return
        match = _RESULT_RE.match(path)
        if match:
            key = match.group(1)
            if not _HASH_RE.match(key):
                self._send_error_json(
                    400,
                    "invalid-hash",
                    "config hashes are 64 lowercase hex characters",
                )
                return
            result = load_cached_result(key, cache_dir=state.cache_dir)
            if result is None:
                self._send_error_json(
                    404, "not-found", f"no cached result for config hash {key}"
                )
                return
            payload = result_to_dict(result)
            payload["config_hash"] = key
            self._send_json(200, payload)
            return
        self._send_error_json(404, "not-found", f"no route for GET {path}")

    def _render_metrics(self) -> str:
        """The full Prometheus exposition: HTTP counters + service gauges."""
        state = self.server.state
        counts = state.queue.status_counts()
        robust = state.queue.stats
        families = state.metrics.families() + [
            (
                "repro_service_campaigns",
                "gauge",
                "campaigns known to the queue, by lifecycle state",
                [({"state": k}, float(v)) for k, v in sorted(counts.items())],
            ),
            (
                "repro_service_experiments",
                "gauge",
                "entries in the persistent experiment index",
                [(None, float(len(state.index)))],
            ),
            (
                "repro_service_index_rebuilt_total",
                "counter",
                "index entries recovered from the cache at startup",
                [(None, float(state.index_rebuilt))],
            ),
            (
                "repro_service_resumed_campaigns_total",
                "counter",
                "campaigns replayed from the submission journal at startup",
                [(None, float(state.resumed_campaigns))],
            ),
            (
                "repro_campaign_retries_total",
                "counter",
                "campaign cells re-run after a worker-process death",
                [(None, float(robust.get("campaign.retries", 0)))],
            ),
            (
                "repro_campaign_pool_rebuilds_total",
                "counter",
                "broken process pools rebuilt between retry rounds",
                [(None, float(robust.get("campaign.pool_rebuilds", 0)))],
            ),
            (
                "repro_cache_quarantined_total",
                "counter",
                "corrupt cache entries moved to the quarantine directory",
                [(None, float(robust.get("campaign.cache_quarantined", 0)))],
            ),
            (
                "repro_cache_io_errors_total",
                "counter",
                "cache read/write IO errors absorbed, by direction",
                [
                    ({"op": "read"}, float(robust.get("campaign.cache_read_errors", 0))),
                    ({"op": "write"}, float(robust.get("campaign.cache_write_errors", 0))),
                ],
            ),
            (
                "repro_index_append_errors_total",
                "counter",
                "experiment-index journal appends that failed (torn writes)",
                [(None, float(state.index.append_errors))],
            ),
            (
                "repro_faults_injected_total",
                "counter",
                "faults fired by the active injection plan (0 when disabled)",
                [(None, float(state.faults.fired_count()))],
            ),
        ]
        return render_prometheus(families)

    def _route_post(self, path: str, query: dict) -> None:
        state = self.server.state
        if path not in ("/campaigns", "/sweeps"):
            self._send_error_json(404, "not-found", f"no route for POST {path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._send_error_json(
                411, "length-required", f"POST {path} needs a Content-Length"
            )
            return
        body = self.rfile.read(length)
        try:
            manifest = parse_manifest(body)
            if path == "/sweeps":
                record = state.queue.submit_sweep(manifest)
            else:
                record = state.queue.submit(manifest)
        except ManifestError as exc:
            status = 413 if exc.code == "body-too-large" else 400
            self._send_error_json(status, exc.code, exc.message, exc.field)
            return
        except QueueFullError as exc:
            # Overload protection: the serial worker is saturated.  429 is
            # safe to retry (nothing was accepted); Retry-After tells the
            # client when a slot should free up.
            self._send_error_json(
                429, "queue-full", str(exc),
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
            return
        record["url"] = f"/campaigns/{record['id']}"
        self._send_json(202, record)


class ServiceServer(ThreadingHTTPServer):
    """One thread per connection; simulation stays on the queue worker."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], state: ServiceState, verbose: bool = False):
        self.state = state
        self.verbose = verbose
        super().__init__(address, _Handler)


def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    **state_kwargs,
) -> ServiceServer:
    """Construct the server and start the queue worker (``port=0`` binds an
    ephemeral port; read it back from ``server.server_address``)."""
    state = ServiceState(**state_kwargs)
    server = ServiceServer((host, port), state, verbose=verbose)
    state.start()
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    verbose: bool = False,
    **state_kwargs,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns the exit code.

    Prints one ``listening on http://...`` line once the socket is bound,
    so wrappers (CI) can wait for readiness; shuts the queue down cleanly
    on the way out.
    """
    server = build_server(host=host, port=port, verbose=verbose, **state_kwargs)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro service listening on http://{bound_host}:{bound_port} "
        f"(cache {server.state.cache_dir}, index rebuilt "
        f"{server.state.index_rebuilt} entr{'y' if server.state.index_rebuilt == 1 else 'ies'})",
        flush=True,
    )

    def _terminate(signum, frame):  # noqa: ANN001
        raise SystemExit(0)

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        server.state.close()
    return 0
