"""``python -m repro`` — forwards to the CLI."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
