"""Performance harness: timed end-to-end scenarios with machine-readable
reports (``repro bench``).

See :mod:`repro.perf.bench` for the scenario presets and the report schema.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    BenchScenario,
    DEFAULT_REPORT_NAME,
    bench_scenario_names,
    discover_baseline,
    get_bench_scenario,
    run_bench,
    speedup_regressions,
    validate_report,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchScenario",
    "DEFAULT_REPORT_NAME",
    "bench_scenario_names",
    "discover_baseline",
    "get_bench_scenario",
    "run_bench",
    "speedup_regressions",
    "validate_report",
    "write_report",
]
