"""Timed end-to-end benchmark scenarios and the ``BENCH_*.json`` report.

The paper's scalability study (Fig. 11) and every "make the hot path
faster" PR need a fixed, machine-readable performance baseline.  This
module provides it:

* five end-to-end presets — the Fig. 4 base setting (``paper-fig4``), a
  streaming-arrival variant (``poisson-steady``), a Fig. 11-style
  large-grid run (``fig11-grid``), a Fig. 10-style dynamic grid
  (``fig10-dynamic``, paper-interval churn with rescheduling) and the
  1000-node production-scale trajectory point (``metro-1k``) — each a
  single-process, fully deterministic simulation;
* :func:`run_bench`, which times them (wall clock, events/second, peak
  RSS) with optional cProfile hot-spot capture and optional comparison
  against a previously written report;
* :func:`discover_baseline` / :func:`speedup_regressions`, the machinery
  behind ``repro bench --baseline`` auto-discovery and the
  ``--regression-threshold`` CI gate;
* :func:`write_report` / :func:`validate_report` for the ``BENCH_PR5.json``
  artifact CI uploads and future PRs diff against.

Determinism means the *simulated outcome* of a bench run never varies —
only the wall clock does — so a report from another machine is comparable
in shape even when absolute numbers differ.

Peak-RSS honesty: scenario memory is measured via the kernel's resettable
high-water mark (``/proc/self/clear_refs`` + ``VmHWM``) where available,
so ``peak_rss_delta_kb`` reflects *this scenario's own* footprint instead
of accumulating monotonically across the presets of one invocation (the
pre-schema-2 behavior).  On platforms without that interface the
``ru_maxrss`` fallback is a process-lifetime high-water mark — later
scenarios inherit earlier scenarios' peaks — so each entry carries
``peak_rss_isolated: false`` and ``peak_rss_delta_kb: null`` rather than
a delta that merely looks per-scenario.
"""

from __future__ import annotations

import cProfile
import json
import platform
import pstats
import re
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Optional

from repro._version import __version__
from repro.experiments.config import ExperimentConfig
from repro.workload.scenarios import apply_scenario

__all__ = [
    "BENCH_SCHEMA",
    "BenchScenario",
    "DEFAULT_REPORT_NAME",
    "bench_scenario_names",
    "discover_baseline",
    "get_bench_scenario",
    "run_bench",
    "speedup_regressions",
    "validate_report",
    "write_report",
]

#: Bump when the report layout changes (CI asserts on this).
#: 2: per-scenario peak-RSS isolation (``peak_rss_delta_kb`` is honest).
BENCH_SCHEMA = 2

#: The canonical repo-root artifact name for this PR's baseline.
DEFAULT_REPORT_NAME = "BENCH_PR9.json"

#: Fields every per-scenario entry must carry (CI schema assertion).
_REQUIRED_SCENARIO_FIELDS = (
    "name",
    "algorithm",
    "n_nodes",
    "n_workflows",
    "events",
    "wall_seconds",
    "events_per_sec",
    "peak_rss_kb",
    "n_done",
)


@dataclass(frozen=True)
class BenchScenario:
    """One timed end-to-end preset.

    ``quick`` shrinks the grid/horizon for smoke jobs (CI, pre-commit)
    while keeping the same code paths hot.
    """

    name: str
    description: str
    build: Callable[[bool], ExperimentConfig]

    def config(self, quick: bool = False) -> ExperimentConfig:
        return self.build(quick)


def _fig4(quick: bool) -> ExperimentConfig:
    base = ExperimentConfig(
        algorithm="dsmf",
        n_nodes=40 if quick else 60,
        load_factor=2 if quick else 3,
        total_time=(8 if quick else 24) * 3600.0,
        seed=7,
        task_range=(2, 30),
    )
    return apply_scenario(base, "paper-fig4")


def _poisson(quick: bool) -> ExperimentConfig:
    base = ExperimentConfig(
        algorithm="dsmf",
        n_nodes=40 if quick else 60,
        load_factor=2 if quick else 3,
        total_time=(8 if quick else 24) * 3600.0,
        seed=7,
        task_range=(2, 30),
    )
    return apply_scenario(base, "poisson-steady")


def _fig11(quick: bool) -> ExperimentConfig:
    base = ExperimentConfig(algorithm="dsmf", seed=7, task_range=(2, 30))
    cfg = apply_scenario(base, "fig11-grid")
    if quick:
        cfg = cfg.with_(n_nodes=120, total_time=6 * 3600.0)
    return cfg


def _fig10(quick: bool) -> ExperimentConfig:
    return ExperimentConfig(
        algorithm="dsmf",
        n_nodes=40 if quick else 60,
        load_factor=2 if quick else 3,
        total_time=(8 if quick else 24) * 3600.0,
        seed=7,
        task_range=(2, 30),
        dynamic_factor=0.2,
        churn_mode="fail",
        recovery_policy="reschedule",
    )


def _metro(quick: bool) -> ExperimentConfig:
    base = ExperimentConfig(algorithm="dsmf", seed=7, task_range=(2, 30))
    cfg = apply_scenario(base, "metro-1k")
    if quick:
        # Keep the full 1000 nodes — the point of the preset is the node
        # count — and shrink only the horizon for smoke jobs.
        cfg = cfg.with_(total_time=2 * 3600.0)
    return cfg


def _metro10k(quick: bool) -> ExperimentConfig:
    base = ExperimentConfig(algorithm="dsmf", seed=7, task_range=(2, 30))
    cfg = apply_scenario(base, "metro-10k")
    if quick:
        # As with metro-1k: all 10,000 nodes stay (CI asserts the node
        # count), only the horizon shrinks.
        cfg = cfg.with_(total_time=0.5 * 3600.0)
    return cfg


_SCENARIOS: dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            "paper-fig4",
            "Fig. 4 base setting (bench scale): 60 nodes, load factor 3, "
            "24 simulated hours, dsmf.",
            _fig4,
        ),
        BenchScenario(
            "poisson-steady",
            "Same grid with workflows arriving as a Poisson stream "
            "(exercises mid-run submit events and full-ahead replanning).",
            _poisson,
        ),
        BenchScenario(
            "fig11-grid",
            "Fig. 11-style large grid: 240 nodes, load factor 1, 12 "
            "simulated hours (gossip- and view-dominated).",
            _fig11,
        ),
        BenchScenario(
            "fig10-dynamic",
            "Fig. 10-style dynamic grid: df=0.2 paper-interval churn in "
            "fail mode with rescheduling (availability hot path: kill/"
            "revive sweeps, ready-set cleanup, re-entered schedule points).",
            _fig10,
        ),
        BenchScenario(
            "metro-1k",
            "Production-scale trajectory point: 1000 nodes (4x the paper's "
            "largest grid), structured-mix workloads, Weibull-session "
            "churn with rescheduling — tracks the 1k-node frontier.",
            _metro,
        ),
        BenchScenario(
            "metro-10k",
            "Metro-scale trajectory point: 10,000 nodes (40x the paper's "
            "largest grid), structured-mix workloads, Weibull-session "
            "churn with rescheduling — the batched-gossip-round frontier.",
            _metro10k,
        ),
    )
}


def bench_scenario_names() -> list[str]:
    """Registered bench preset names, in canonical order."""
    return list(_SCENARIOS)


def get_bench_scenario(name: str) -> BenchScenario:
    """Look up a bench preset; ``ValueError`` lists the valid names."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench scenario {name!r}; "
            f"available: {', '.join(bench_scenario_names())}"
        ) from None


# --------------------------------------------------------------------------
# Measurement
# --------------------------------------------------------------------------

def _reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS high-water mark for this process.

    Writing ``5`` to ``/proc/self/clear_refs`` (Linux) resets ``VmHWM`` to
    the current RSS, which is what makes per-scenario peak measurements
    honest within one process.  Returns ``False`` where unsupported; the
    caller then falls back to the cumulative ``ru_maxrss`` semantics.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:  # pragma: no cover - non-Linux / restricted /proc
        return False


def _peak_rss_kb() -> Optional[int]:
    """High-water-mark resident set size of this process, in KiB.

    Prefers ``VmHWM`` from ``/proc/self/status`` (resettable via
    :func:`_reset_peak_rss`); falls back to ``ru_maxrss``, which is KiB on
    Linux and bytes on macOS.  Returns ``None`` where neither source
    exists (Windows without :mod:`resource`).
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - not our CI
        peak //= 1024
    return int(peak)


def _profile_top(profiler: cProfile.Profile, top: int) -> list[dict]:
    """The ``top`` hottest repo functions by cumulative time, as dicts.

    Built-ins (filename ``~``) and site/stdlib frames are filtered out;
    the whole profile is scanned so the report always carries ``top``
    repo rows when that many exist.
    """
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: list[dict] = []
    for func in stats.fcn_list:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _ = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        in_repo = "/repro/" in filename.replace("\\", "/")
        if not in_repo:
            continue  # keep the report focused on repo code
        rows.append(
            {
                "function": f"{Path(filename).name}:{lineno}:{name}",
                "calls": int(nc),
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
            }
        )
        if len(rows) >= top:
            break
    return rows


def _run_one(
    scenario: BenchScenario,
    quick: bool,
    repeats: int,
    profile_top: int,
    telemetry: bool = False,
) -> dict:
    from repro.grid.system import P2PGridSystem

    config = scenario.config(quick)
    if telemetry:
        # Times the instrumented path; observation-only, so the digest
        # assertion below still holds against telemetry-off baselines.
        config = config.with_(telemetry=True)
    walls: list[float] = []
    digests: set[str] = set()
    result = None
    profile_rows: list[dict] = []
    if profile_top:
        # Profiling inflates wall time 2-4x, so the profiled run is an
        # *extra* rep whose wall never enters the report — otherwise a
        # later --baseline comparison would credit profiler overhead as
        # speedup.
        system = P2PGridSystem(config)
        profiler = cProfile.Profile()
        profiler.enable()
        result = system.run()
        profiler.disable()
        profile_rows = _profile_top(profiler, profile_top)
        digests.add(_digest(result))
    # Isolate this scenario's memory footprint: resetting the kernel
    # high-water mark makes rss_before the current RSS, so the delta below
    # is what *this* scenario added — not whatever an earlier preset
    # peaked at (pre-reset, deltas were 0-floored lower bounds).
    rss_isolated = _reset_peak_rss()
    rss_before = _peak_rss_kb()
    for _ in range(max(1, repeats)):
        system = P2PGridSystem(config)
        t0 = time.perf_counter()
        result = system.run()
        walls.append(time.perf_counter() - t0)
        digests.add(_digest(result))
    rss_after = _peak_rss_kb()
    assert result is not None
    if len(digests) != 1:  # pragma: no cover - determinism violation
        raise RuntimeError(
            f"bench scenario {scenario.name!r} was not deterministic across "
            f"repeats: {sorted(digests)}"
        )
    wall = min(walls)  # best-of-N: least scheduler noise
    entry = {
        "name": scenario.name,
        "description": scenario.description,
        "quick": quick,
        "algorithm": config.algorithm,
        "n_nodes": config.n_nodes,
        "total_time_hours": config.total_time / 3600.0,
        "n_workflows": result.n_workflows,
        "n_done": result.n_done,
        "events": result.events_executed,
        "wall_seconds": round(wall, 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "events_per_sec": round(result.events_executed / wall, 1) if wall > 0 else 0.0,
        # With rss_isolated the high-water mark was reset before this
        # scenario's timed reps: peak_rss_kb is this scenario's own peak
        # (interpreter baseline included) and peak_rss_delta_kb what it
        # allocated on top of the pre-scenario RSS.  Without isolation
        # (non-Linux), ru_maxrss is a process-lifetime high-water mark:
        # later scenarios inherit earlier peaks, before == after, and a
        # "delta" of 0 would merely *look* per-scenario — so the delta is
        # reported as null and peak_rss_kb keeps cumulative semantics.
        "peak_rss_kb": rss_after,
        "peak_rss_isolated": rss_isolated,
        "peak_rss_delta_kb": (
            None if not rss_isolated or rss_after is None or rss_before is None
            else rss_after - rss_before
        ),
        "result_digest": _digest(result),
    }
    if profile_rows:
        entry["profile_top"] = profile_rows
    if telemetry and result.telemetry is not None:
        # Counters only: the full snapshot (series, histograms) would bloat
        # the committed artifact; counters carry the comparable totals.
        entry["telemetry"] = {
            k: result.telemetry.counters[k] for k in sorted(result.telemetry.counters)
        }
    return entry


def _digest(result) -> str:
    from repro.experiments.campaign import result_digest

    return result_digest(result)


# --------------------------------------------------------------------------
# Baselines
# --------------------------------------------------------------------------

_BASELINE_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")


def discover_baseline(
    root: "str | Path" = ".",
    exclude: "str | Path | None" = None,
    quick: Optional[bool] = None,
) -> Optional[Path]:
    """The newest committed ``BENCH_PR<N>.json`` under ``root``.

    "Newest" is by PR number, so ``repro bench --baseline`` (no path)
    always gates against the most recent committed baseline; ``exclude``
    skips the report currently being written (otherwise a re-run would
    discover its own previous output).  When ``quick`` is given, only
    reports whose top-level ``quick`` flag matches are considered —
    speedups are only computed between same-size runs, so a quick smoke
    gate must discover the committed *quick* baseline and a full bench
    the full one (reports that can't be read are skipped in that mode).
    """
    root = Path(root)
    exclude_path = Path(exclude).resolve() if exclude is not None else None
    best: tuple[int, Path] | None = None
    for path in root.glob("BENCH_PR*.json"):
        match = _BASELINE_PATTERN.match(path.name)
        if match is None:
            continue
        if exclude_path is not None and path.resolve() == exclude_path:
            continue
        if quick is not None:
            try:
                report = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if bool(report.get("quick")) != quick:
                continue
        number = int(match.group(1))
        if best is None or number > best[0]:
            best = (number, path)
    return best[1] if best else None


def normalize_threshold(threshold: float) -> float:
    """Resolve a ``--regression-threshold`` value to a speedup floor.

    Both spellings of "fail on a >25% slowdown" are accepted: ``0.8``
    (the minimum tolerated speedup factor) and ``1.25`` (the maximum
    tolerated *slowdown* factor — values above 1 are reciprocated).
    """
    if threshold <= 0:
        raise ValueError(f"--regression-threshold must be positive, got {threshold!r}")
    return 1.0 / threshold if threshold > 1.0 else threshold


def speedup_regressions(report: Mapping, threshold: float) -> list[str]:
    """Scenarios whose wall-clock speedup vs the baseline fell below the
    ``threshold`` floor (``0.8`` and ``1.25`` both mean "tolerate up to a
    1.25x slowdown" — see :func:`normalize_threshold`).

    Returns human-readable problem strings (empty = within budget); only
    scenarios present in both reports are compared, so adding a preset
    never trips the gate retroactively.
    """
    floor = normalize_threshold(threshold)
    problems = []
    for name, factor in sorted(report.get("speedup", {}).items()):
        if factor < floor:
            problems.append(
                f"{name}: {factor:.3f}x vs baseline is below the "
                f"--regression-threshold floor of {floor:g}x"
            )
    return problems


# --------------------------------------------------------------------------
# Reports
# --------------------------------------------------------------------------

def run_bench(
    scenarios: Optional[Iterable[str]] = None,
    quick: bool = False,
    repeats: int = 1,
    profile_top: int = 0,
    baseline: Optional[Mapping] = None,
    telemetry: bool = False,
    progress: Optional[Callable[[dict], None]] = None,
) -> dict:
    """Time the requested scenarios and return the report dict.

    Parameters
    ----------
    scenarios:
        Preset names (default: all three).
    quick:
        Use the shrunk smoke-sized configs.
    repeats:
        Timing repetitions per scenario; the report keeps the best wall
        time (the simulated outcome is identical across repeats and the
        report asserts so via the result digest).
    profile_top:
        When > 0, capture cProfile and embed the N hottest repo functions.
        The profiled run is an extra repetition whose (inflated) wall time
        never enters the report.
    baseline:
        A previously written report; per-scenario wall-clock speedups
        (``baseline_wall / current_wall``) are embedded under ``speedup``.
    telemetry:
        Run the scenarios with runtime telemetry enabled and embed each
        scenario's counter snapshot.  The instrumented path is what gets
        timed; result digests are unchanged (telemetry is
        observation-only), so cross-flag baseline comparisons stay valid.
    progress:
        Called with each finished scenario entry.
    """
    names = list(scenarios) if scenarios else bench_scenario_names()
    # Resolve every name up front so a typo fails before any timing runs.
    resolved = [get_bench_scenario(name) for name in names]
    if baseline is not None and bool(baseline.get("quick")) != quick:
        # Quick and full runs use different grid sizes/horizons, so a
        # cross-mode "speedup" would be a size artifact, not performance —
        # and a silently empty speedup map would make any
        # --regression-threshold gate pass vacuously.  Refuse up front.
        raise ValueError(
            "baseline mode mismatch: the supplied baseline was recorded with "
            f"quick={bool(baseline.get('quick'))} but this run uses "
            f"quick={quick}; speedups are only meaningful between same-size "
            "runs. Pass a matching baseline (auto-discovery with --baseline "
            "already filters by mode) or re-run with the same --quick setting."
        )
    entries = []
    for scenario in resolved:
        entry = _run_one(scenario, quick, repeats, profile_top, telemetry=telemetry)
        if progress is not None:
            progress(entry)
        entries.append(entry)
    report = {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "repeats": max(1, repeats),
        "telemetry": telemetry,
        "scenarios": entries,
    }
    if baseline is not None:
        speedup: dict[str, float] = {}
        base_by_name = {s["name"]: s for s in baseline.get("scenarios", [])}
        for entry in entries:
            base = base_by_name.get(entry["name"])
            if not base or base.get("quick") != entry["quick"]:
                continue
            if entry["wall_seconds"] > 0:
                speedup[entry["name"]] = round(
                    base["wall_seconds"] / entry["wall_seconds"], 3
                )
        report["baseline"] = {
            "version": baseline.get("version"),
            "scenarios": {
                s["name"]: {
                    "wall_seconds": s["wall_seconds"],
                    "events_per_sec": s["events_per_sec"],
                }
                for s in baseline.get("scenarios", [])
            },
        }
        report["speedup"] = speedup
    return report


def write_report(report: Mapping, path: "str | Path") -> Path:
    """Write a report as pretty JSON; returns the path."""
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def validate_report(report: Mapping) -> list[str]:
    """Schema check for CI: returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if report.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA}, got {report.get('schema')!r}")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        problems.append("scenarios must be a non-empty list")
        return problems
    for entry in scenarios:
        if not isinstance(entry, dict):
            problems.append(f"scenario entry is not an object: {entry!r}")
            continue
        for field_name in _REQUIRED_SCENARIO_FIELDS:
            if field_name not in entry:
                problems.append(
                    f"scenario {entry.get('name', '?')!r} missing {field_name!r}"
                )
        wall = entry.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall <= 0:
            problems.append(
                f"scenario {entry.get('name', '?')!r} has invalid wall_seconds {wall!r}"
            )
        events = entry.get("events")
        if not isinstance(events, int) or events <= 0:
            problems.append(
                f"scenario {entry.get('name', '?')!r} has invalid events {events!r}"
            )
    return problems
