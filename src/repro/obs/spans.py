"""Sim-time tracing spans: Chrome trace-event JSON from a TraceRecorder.

:func:`build_chrome_trace` turns the events a
:class:`~repro.trace.recorder.TraceRecorder` collected (plus the
workflow records of the finished :class:`~repro.metrics.collectors.RunResult`)
into the Trace Event Format understood by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``:

* **pid 1 "nodes"** — one thread per peer node: task execution slices
  (``ph: "X"`` complete events, start→finish) and churn instants
  (``node_down``/``node_up``).
* **pid 2 "workflows"** — one thread per workflow: a lifecycle slice from
  submission to completion/failure, annotated with task counts and the
  number of churn-rescued tasks (tasks dispatched more than once).
* **pid 3 "transfers"** — nestable async spans (``ph: "b"``/``"e"``,
  paired by the recorder's transfer sequence number) per destination
  node, carrying source and megabits.
* **pid 4 "gossip"** — one instant per gossip round with its message
  count.

Timestamps are simulated seconds scaled to microseconds (the format's
unit), so one trace second equals one simulated second.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collectors import RunResult
    from repro.trace.recorder import TraceRecorder

__all__ = [
    "build_chrome_trace",
    "write_chrome_trace",
    "summarize_chrome_trace",
    "format_trace_summary",
]

_PID_NODES = 1
_PID_WORKFLOWS = 2
_PID_TRANSFERS = 3
_PID_GOSSIP = 4

#: sim seconds -> trace microseconds
_US = 1e6


def _meta(pid: int, name: str, tid: int = 0, kind: str = "process_name") -> dict:
    return {"ph": "M", "pid": pid, "tid": tid, "name": kind, "args": {"name": name}}


def build_chrome_trace(recorder: "TraceRecorder", result: Optional["RunResult"] = None) -> dict:
    """Build a Trace Event Format document (see module docstring)."""
    events: list[dict] = [
        _meta(_PID_NODES, "nodes"),
        _meta(_PID_WORKFLOWS, "workflows"),
        _meta(_PID_TRANSFERS, "transfers"),
        _meta(_PID_GOSSIP, "gossip"),
        _meta(_PID_GOSSIP, "rounds", tid=0, kind="thread_name"),
    ]

    # ---------------------------------------------------------------- nodes
    named_nodes: set[int] = set()

    def node_track(nid: int) -> int:
        if nid not in named_nodes:
            named_nodes.add(nid)
            events.append(
                _meta(_PID_NODES, f"node {nid}", tid=nid, kind="thread_name")
            )
        return nid

    for node, wid, tid, start, finish in recorder.task_intervals():
        events.append(
            {
                "ph": "X",
                "pid": _PID_NODES,
                "tid": node_track(node),
                "name": f"{wid}/t{tid}",
                "cat": "exec",
                "ts": start * _US,
                "dur": (finish - start) * _US,
                "args": {"wid": wid, "tid": tid},
            }
        )

    dispatch_counts: Counter = Counter()
    for e in recorder.events:
        if e.kind == "dispatch":
            dispatch_counts[(e.wid, e.tid)] += 1
        elif e.kind in ("node_down", "node_up"):
            events.append(
                {
                    "ph": "i",
                    "pid": _PID_NODES,
                    "tid": node_track(e.node),
                    "name": e.kind,
                    "cat": "churn",
                    "ts": e.time * _US,
                    "s": "t",
                }
            )
        elif e.kind == "transfer_start":
            events.append(
                {
                    "ph": "b",
                    "pid": _PID_TRANSFERS,
                    "tid": e.node,
                    "id": e.tid,
                    "name": f"{e.src}->{e.node}",
                    "cat": "transfer",
                    "ts": e.time * _US,
                    "args": {"src": e.src, "dst": e.node, "megabits": e.size},
                }
            )
        elif e.kind == "transfer_done":
            events.append(
                {
                    "ph": "e",
                    "pid": _PID_TRANSFERS,
                    "tid": e.node,
                    "id": e.tid,
                    "name": f"{e.src}->{e.node}",
                    "cat": "transfer",
                    "ts": e.time * _US,
                }
            )
        elif e.kind == "gossip_round":
            events.append(
                {
                    "ph": "i",
                    "pid": _PID_GOSSIP,
                    "tid": 0,
                    "name": f"round {e.tid}",
                    "cat": "gossip",
                    "ts": e.time * _US,
                    "s": "p",
                    "args": {"messages": e.size},
                }
            )
        elif e.kind == "task_lost":
            events.append(
                {
                    "ph": "i",
                    "pid": _PID_NODES,
                    "tid": 0,
                    "name": "task_lost",
                    "cat": "churn",
                    "ts": e.time * _US,
                    "s": "g",
                }
            )

    # ------------------------------------------------------------ workflows
    # Rescued tasks = dispatched more than once (a recovery policy re-entered
    # them after churn loss).
    rescued_by_wid: Counter = Counter()
    for (wid, _tid), n in dispatch_counts.items():
        if n > 1:
            rescued_by_wid[wid] += 1

    terminal_times = {
        e.wid: e.time
        for e in recorder.events
        if e.kind in ("workflow_done", "workflow_failed")
    }
    if result is not None:
        for track, record in enumerate(result.records):
            end = record.completion_time
            if end is None:
                end = terminal_times.get(record.wid)
            status = record.status
            events.append(
                _meta(
                    _PID_WORKFLOWS,
                    f"{record.wid} ({status})",
                    tid=track,
                    kind="thread_name",
                )
            )
            args = {
                "wid": record.wid,
                "home": record.home_id,
                "n_tasks": record.n_tasks,
                "status": status,
                "rescued_tasks": rescued_by_wid.get(record.wid, 0),
            }
            if record.failure_reason:
                args["failure_reason"] = record.failure_reason
            if end is not None:
                events.append(
                    {
                        "ph": "X",
                        "pid": _PID_WORKFLOWS,
                        "tid": track,
                        "name": record.wid,
                        "cat": f"workflow_{status}",
                        "ts": record.submit_time * _US,
                        "dur": (end - record.submit_time) * _US,
                        "args": args,
                    }
                )
            else:  # still running at the horizon: an open-ended instant
                events.append(
                    {
                        "ph": "i",
                        "pid": _PID_WORKFLOWS,
                        "tid": track,
                        "name": f"{record.wid} (running at horizon)",
                        "cat": "workflow_running",
                        "ts": record.submit_time * _US,
                        "s": "t",
                        "args": args,
                    }
                )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, recorder: "TraceRecorder", result: Optional["RunResult"] = None
) -> dict:
    """Write the trace JSON to ``path`` and return the document."""
    trace = build_chrome_trace(recorder, result)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
    return trace


# --------------------------------------------------------------------------
# `repro trace summarize`
# --------------------------------------------------------------------------

def summarize_chrome_trace(trace: dict) -> dict:
    """Aggregate a trace document: span counts/durations per category."""
    events = trace.get("traceEvents", [])
    by_cat: dict[str, dict[str, float]] = defaultdict(
        lambda: {"events": 0.0, "span_seconds": 0.0}
    )
    open_async: dict[tuple, float] = {}
    t_min = float("inf")
    t_max = float("-inf")
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        cat = e.get("cat", "(uncategorized)")
        slot = by_cat[cat]
        slot["events"] += 1
        ts = float(e.get("ts", 0.0))
        t_min = min(t_min, ts)
        t_max = max(t_max, ts)
        if ph == "X":
            dur = float(e.get("dur", 0.0))
            slot["span_seconds"] += dur / _US
            t_max = max(t_max, ts + dur)
        elif ph == "b":
            open_async[(e.get("pid"), e.get("id"))] = ts
        elif ph == "e":
            t0 = open_async.pop((e.get("pid"), e.get("id")), None)
            if t0 is not None:
                slot["span_seconds"] += (ts - t0) / _US
    return {
        "n_events": sum(int(s["events"]) for s in by_cat.values()),
        "time_range_seconds": (
            [t_min / _US, t_max / _US] if t_min <= t_max else [0.0, 0.0]
        ),
        "categories": {k: dict(v) for k, v in sorted(by_cat.items())},
        "unmatched_async": len(open_async),
    }


def format_trace_summary(summary: dict) -> str:
    """Render :func:`summarize_chrome_trace` output for the CLI."""
    lo, hi = summary["time_range_seconds"]
    lines = [
        f"{summary['n_events']} trace events over "
        f"[{lo:.0f}s, {hi:.0f}s] sim time "
        f"({(hi - lo) / 3600.0:.2f} h)",
        f"{'category':<24s} {'events':>10s} {'span total':>14s}",
    ]
    for cat, slot in summary["categories"].items():
        lines.append(
            f"{cat:<24s} {int(slot['events']):>10d} {slot['span_seconds']:>12.1f} s"
        )
    if summary["unmatched_async"]:
        lines.append(
            f"({summary['unmatched_async']} transfers still open at the horizon)"
        )
    return "\n".join(lines)
