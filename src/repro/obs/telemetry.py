"""Runtime telemetry: counters, gauges, histograms, bounded time series.

Design constraints (see tests/obs/):

* **Zero overhead when disabled.**  Hot paths hold a reference to either a
  :class:`Telemetry` or the shared :data:`NULL_TELEMETRY` and guard any
  non-trivial work with ``if telemetry.enabled:``.  The null backend's
  methods are no-ops so un-guarded ``inc()`` calls are still safe.
* **Golden-safe when enabled.**  Telemetry never draws from any RNG and
  never feeds back into the simulation; enabling it must leave every
  ``result_digest`` bit-identical.
* **Pickle/JSON-friendly snapshots.**  :class:`TelemetrySnapshot` is a
  plain dataclass of dicts so it survives multiprocessing campaign
  workers, the content-addressed result cache, and the service's JSON
  responses.

The module imports nothing from the rest of :mod:`repro` so any layer can
use it without import cycles.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Hard cap on points retained per named time series (drop-oldest).  Keeps
#: snapshots bounded on metro-scale runs while preserving recent history.
MAX_SERIES_POINTS = 4096


# --------------------------------------------------------------------------
# snapshot
# --------------------------------------------------------------------------

@dataclass
class TelemetrySnapshot:
    """Aggregated, immutable-ish view of a :class:`Telemetry` backend.

    All fields are plain builtins so instances pickle across process pools
    and serialise with ``json.dumps`` via :meth:`to_dict`.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: name -> {"count": int, "sum": float, "min": float, "max": float}
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: name -> [(x, value), ...] — x is sim time unless noted otherwise
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: number of runs folded into this snapshot (>= 1 once populated)
    n_runs: int = 1

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "series": {k: [[x, y] for x, y in v] for k, v in self.series.items()},
            "n_runs": self.n_runs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TelemetrySnapshot":
        return cls(
            counters={str(k): float(v) for k, v in payload.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in payload.get("gauges", {}).items()},
            histograms={
                str(k): {str(f): float(x) for f, x in v.items()}
                for k, v in payload.get("histograms", {}).items()
            },
            series={
                str(k): [(float(x), float(y)) for x, y in v]
                for k, v in payload.get("series", {}).items()
            },
            n_runs=int(payload.get("n_runs", 1)),
        )

    # -- aggregation ------------------------------------------------------
    @classmethod
    def merged(cls, snapshots: Sequence["TelemetrySnapshot"]) -> "TelemetrySnapshot":
        """Fold snapshots from many runs (e.g. campaign workers) into one.

        Counters and histogram count/sum add; histogram min/max and gauge
        maxima combine order-independently; gauges are summed (callers
        that want means can divide by ``n_runs``).  Series are dropped —
        per-run time series do not aggregate meaningfully across seeds.
        """
        out = cls(n_runs=0)
        for snap in snapshots:
            out.n_runs += max(1, snap.n_runs)
            for name, value in snap.counters.items():
                out.counters[name] = out.counters.get(name, 0.0) + value
            for name, value in snap.gauges.items():
                out.gauges[name] = out.gauges.get(name, 0.0) + value
            for name, h in snap.histograms.items():
                agg = out.histograms.setdefault(
                    name, {"count": 0.0, "sum": 0.0, "min": math.inf, "max": -math.inf}
                )
                agg["count"] += h.get("count", 0.0)
                agg["sum"] += h.get("sum", 0.0)
                agg["min"] = min(agg["min"], h.get("min", math.inf))
                agg["max"] = max(agg["max"], h.get("max", -math.inf))
        for h in out.histograms.values():
            if not h["count"]:
                h["min"] = 0.0
                h["max"] = 0.0
        return out

    # -- presentation -----------------------------------------------------
    def summary_lines(self, max_series: int = 0) -> List[str]:
        """Human-readable dump for the CLI (stable sort order)."""
        lines: List[str] = []
        if self.n_runs > 1:
            lines.append(f"telemetry aggregated over {self.n_runs} runs")
        for name in sorted(self.counters):
            lines.append(f"  {name:<44s} {self.counters[name]:>14.6g}")
        for name in sorted(self.gauges):
            lines.append(f"  {name:<44s} {self.gauges[name]:>14.6g}  (gauge)")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            count = h.get("count", 0.0)
            mean = (h.get("sum", 0.0) / count) if count else 0.0
            lines.append(
                f"  {name:<44s} n={count:<8.6g} mean={mean:.3g} "
                f"min={h.get('min', 0.0):.3g} max={h.get('max', 0.0):.3g}"
            )
        if max_series:
            for name in sorted(self.series):
                pts = self.series[name]
                lines.append(f"  {name}: {len(pts)} points")
        return lines

    def to_prometheus(self, prefix: str = "repro_run") -> str:
        """Render this snapshot as Prometheus text exposition format."""
        families: List[tuple] = []
        for name in sorted(self.counters):
            families.append(
                (f"{prefix}_{_sanitize(name)}_total", "counter", f"run counter {name}",
                 [(None, self.counters[name])])
            )
        for name in sorted(self.gauges):
            families.append(
                (f"{prefix}_{_sanitize(name)}", "gauge", f"run gauge {name}",
                 [(None, self.gauges[name])])
            )
        for name in sorted(self.histograms):
            h = self.histograms[name]
            base = f"{prefix}_{_sanitize(name)}"
            families.append((f"{base}_count", "counter", f"observations of {name}",
                             [(None, h.get("count", 0.0))]))
            families.append((f"{base}_sum", "counter", f"sum of {name}",
                             [(None, h.get("sum", 0.0))]))
        return render_prometheus(families)


# --------------------------------------------------------------------------
# live backends
# --------------------------------------------------------------------------

class Telemetry:
    """Mutable metric registry used while a simulation runs.

    Not thread-safe: a single simulation is single-threaded, and campaign
    workers each own a private instance (snapshots merge afterwards).
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_hist", "_series")

    def __init__(self) -> None:
        self.enabled = True
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hist: Dict[str, List[float]] = {}  # [count, sum, min, max]
        self._series: Dict[str, List[Tuple[float, float]]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        cur = self._gauges.get(name)
        if cur is None or value > cur:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self._hist.get(name)
        if h is None:
            self._hist[name] = [1.0, value, value, value]
            return
        h[0] += 1.0
        h[1] += value
        if value < h[2]:
            h[2] = value
        if value > h[3]:
            h[3] = value

    def point(self, name: str, x: float, value: float) -> None:
        pts = self._series.setdefault(name, [])
        pts.append((x, value))
        if len(pts) > MAX_SERIES_POINTS:
            del pts[: len(pts) - MAX_SERIES_POINTS]

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                name: {"count": h[0], "sum": h[1], "min": h[2], "max": h[3]}
                for name, h in self._hist.items()
            },
            series={name: list(pts) for name, pts in self._series.items()},
        )


class NullTelemetry:
    """No-op backend.  ``enabled`` is False so hot paths can skip work."""

    __slots__ = ()
    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def point(self, name: str, x: float, value: float) -> None:
        pass

    def snapshot(self) -> Optional[TelemetrySnapshot]:
        return None


#: Shared null instance — safe because it is stateless.
NULL_TELEMETRY = NullTelemetry()


def make_telemetry(enabled: bool):
    """Return a live :class:`Telemetry` or the shared null backend."""
    return Telemetry() if enabled else NULL_TELEMETRY


# --------------------------------------------------------------------------
# Prometheus text exposition (stdlib only)
# --------------------------------------------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Fold an internal dotted metric name into a Prometheus-legal one."""
    cleaned = _NAME_BAD.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    families: Iterable[Tuple[str, str, str, Sequence[Tuple[Optional[Mapping[str, str]], float]]]],
) -> str:
    """Render metric families as Prometheus text format 0.0.4.

    Each family is ``(name, kind, help, samples)`` with kind ``counter`` or
    ``gauge`` and samples ``[(labels-or-None, value), ...]``.
    """
    lines: List[str] = []
    for name, kind, help_text, samples in families:
        name = _sanitize(name)
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            if labels:
                rendered = ",".join(
                    f'{_sanitize(k)}="{_escape_label(str(v))}"'
                    for k, v in sorted(labels.items())
                )
                lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+\d+)?$"
)


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse Prometheus text format into ``{sample_key: value}``.

    The sample key is ``name`` or ``name{labels}`` exactly as exposed
    (labels in source order).  Used by tests and CI smoke checks; raises
    ``ValueError`` on any malformed non-comment line so a scrape assert
    actually validates the format.
    """
    samples: Dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed Prometheus sample line: {raw!r}")
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            value = float(value_text)
        labels = match.group("labels")
        key = match.group("name") + (f"{{{labels}}}" if labels else "")
        samples[key] = value
    return samples
