"""Observability layer: runtime telemetry, sim-time tracing spans, exporters.

This package is deliberately dependency-free *within* the code base: it
imports nothing from :mod:`repro`, so every other subsystem (sim engine,
gossip, grid, service) can depend on it without cycles.

Three surfaces:

* :mod:`repro.obs.telemetry` — counters / gauges / histograms with a
  null backend that makes instrumentation zero-overhead when disabled,
  plus a pickle/JSON-friendly :class:`~repro.obs.telemetry.TelemetrySnapshot`
  and stdlib-only Prometheus text rendering.
* :mod:`repro.obs.spans` — Chrome trace-event JSON built from a
  :class:`~repro.trace.recorder.TraceRecorder`, viewable in Perfetto or
  ``chrome://tracing``.
* the ``/metrics`` endpoint of ``repro serve`` (see
  :mod:`repro.service.app`) reuses the Prometheus helpers here.
"""

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    make_telemetry,
    parse_prometheus,
    render_prometheus,
)

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
    "make_telemetry",
    "parse_prometheus",
    "render_prometheus",
]
