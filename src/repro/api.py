"""Top-level convenience API.

Thin wrappers so a downstream user can run a simulation in three lines
without touching the experiment plumbing::

    from repro import quick_run
    result = quick_run(algorithm="dsmf", n_nodes=60, seed=7)
    print(result.summary())
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from typing import Callable, Optional, Sequence

    from repro.experiments.campaign import CampaignResult, CampaignRun
    from repro.experiments.config import ExperimentConfig
    from repro.metrics.collectors import RunResult

__all__ = ["available_algorithms", "quick_run", "run_campaign", "run_experiment"]


def available_algorithms() -> list[str]:
    """Names accepted by ``quick_run``/``run_experiment`` (the paper's
    eight algorithms plus the FCFS second-phase ablation bundles)."""
    from repro.core.heuristics.registry import algorithm_names

    return algorithm_names()


def run_experiment(config: "ExperimentConfig") -> "RunResult":
    """Build a P2P grid system from ``config``, run it, return the metrics."""
    from repro.grid.system import P2PGridSystem

    system = P2PGridSystem(config)
    return system.run()


def quick_run(
    algorithm: str = "dsmf",
    n_nodes: int = 60,
    load_factor: int = 2,
    duration_hours: float = 12.0,
    seed: int = 1,
    **overrides,
) -> "RunResult":
    """One-call simulation with small-scale defaults (see README quickstart).

    Any :class:`~repro.experiments.config.ExperimentConfig` field can be
    overridden by keyword.
    """
    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig(
        algorithm=algorithm,
        n_nodes=n_nodes,
        load_factor=load_factor,
        total_time=duration_hours * 3600.0,
        seed=seed,
        **overrides,
    )
    return run_experiment(config)


def run_campaign(
    algorithms: "Sequence[str]" = ("dsmf",),
    seeds: "Sequence[int]" = (1,),
    base: "Optional[ExperimentConfig]" = None,
    jobs: int = 1,
    cache_dir=None,
    use_cache: bool = True,
    progress: "Optional[Callable[[CampaignRun], None]]" = None,
    **overrides,
) -> "CampaignResult":
    """Run an (algorithm × seed) sweep with process fan-out and caching.

    Results are deterministic per config regardless of ``jobs``; completed
    runs are cached on disk keyed by a content hash of the resolved config,
    so re-invocations are near-instant.  Any
    :class:`~repro.experiments.config.ExperimentConfig` field can be
    overridden by keyword (applied to every cell of the sweep)::

        from repro import run_campaign
        campaign = run_campaign(["dsmf", "dheft"], seeds=range(1, 5), jobs=4,
                                n_nodes=80, total_time=12 * 3600.0)
        for run in campaign:
            print(run.label, run.result.summary())
    """
    from repro.experiments.campaign import CampaignRunner, sweep_specs

    specs = sweep_specs(algorithms, seeds, base=base, **overrides)
    runner = CampaignRunner(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )
    return runner.run(specs)
