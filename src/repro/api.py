"""Top-level convenience API.

Thin wrappers so a downstream user can run a simulation in three lines
without touching the experiment plumbing::

    from repro import quick_run
    result = quick_run(algorithm="dsmf", n_nodes=60, seed=7)
    print(result.summary())
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from typing import Callable, Optional, Sequence

    from repro.experiments.campaign import CampaignResult, CampaignRun
    from repro.experiments.config import ExperimentConfig
    from repro.metrics.collectors import RunResult

__all__ = [
    "available_algorithms",
    "available_churn_models",
    "available_recovery_policies",
    "available_scenarios",
    "quick_run",
    "run_campaign",
    "run_experiment",
    "run_manifest",
    "run_sweep",
]


def available_algorithms() -> list[str]:
    """Names accepted by ``quick_run``/``run_experiment`` (the paper's
    eight algorithms plus the FCFS second-phase ablation bundles)."""
    from repro.core.heuristics.registry import algorithm_names

    return algorithm_names()


def available_scenarios() -> list[str]:
    """Scenario presets (workload and availability) accepted by
    ``quick_run``/``run_campaign`` (see :mod:`repro.workload.scenarios`)."""
    from repro.workload.scenarios import scenario_names

    return scenario_names()


def available_churn_models() -> list[str]:
    """Availability models accepted as the ``churn_model`` override
    (see :mod:`repro.availability.models`)."""
    from repro.availability.models import churn_model_names

    return churn_model_names()


def available_recovery_policies() -> list[str]:
    """Recovery policies accepted as the ``recovery_policy`` override
    (see :mod:`repro.availability.recovery`)."""
    from repro.availability.recovery import recovery_policy_names

    return recovery_policy_names()


def run_experiment(config: "ExperimentConfig", recorder=None) -> "RunResult":
    """Build a P2P grid system from ``config``, run it, return the metrics.

    ``recorder`` optionally attaches a
    :class:`~repro.trace.recorder.TraceRecorder` before the run (for
    Perfetto traces via :mod:`repro.obs.spans`).
    """
    from repro.grid.system import P2PGridSystem

    system = P2PGridSystem(config)
    if recorder is not None:
        recorder.attach(system)
    return system.run()


def quick_run(
    algorithm: str = "dsmf",
    n_nodes: "Optional[int]" = None,
    load_factor: "Optional[int]" = None,
    duration_hours: "Optional[float]" = None,
    seed: int = 1,
    scenario: "Optional[str]" = None,
    recorder=None,
    **overrides,
) -> "RunResult":
    """One-call simulation with small-scale defaults (see README quickstart):
    60 nodes, load factor 2, 12 simulated hours.

    Any :class:`~repro.experiments.config.ExperimentConfig` field can be
    overridden by keyword; ``scenario`` applies a named workload preset
    (``available_scenarios()``).  Explicitly passed arguments win over the
    preset's overrides; omitted ones yield to it (so e.g.
    ``quick_run(scenario="diurnal-week")`` really runs the preset's
    week-long horizon).
    """
    from repro.experiments.config import ExperimentConfig

    params: dict = dict(algorithm=algorithm, seed=seed, **overrides)
    if n_nodes is not None:
        params["n_nodes"] = n_nodes
    if load_factor is not None:
        params["load_factor"] = load_factor
    if duration_hours is not None:
        params["total_time"] = duration_hours * 3600.0
    if scenario is not None:
        from repro.workload.scenarios import get_scenario

        preset = dict(get_scenario(scenario).overrides)
        preset.update(params)
        params = {"scenario": scenario, **preset}
    params.setdefault("n_nodes", 60)
    params.setdefault("load_factor", 2)
    params.setdefault("total_time", 12 * 3600.0)
    config = ExperimentConfig(**params)
    return run_experiment(config, recorder=recorder)


def run_campaign(
    algorithms: "Sequence[str]" = ("dsmf",),
    seeds: "Sequence[int]" = (1,),
    base: "Optional[ExperimentConfig]" = None,
    jobs: int = 1,
    cache_dir=None,
    use_cache: bool = True,
    progress: "Optional[Callable[[CampaignRun], None]]" = None,
    scenario: "Optional[str]" = None,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    faults=None,
    **overrides,
) -> "CampaignResult":
    """Run an (algorithm × seed) sweep with process fan-out and caching.

    Results are deterministic per config regardless of ``jobs``; completed
    runs are cached on disk keyed by a content hash of the resolved config,
    so re-invocations are near-instant.  ``scenario`` applies a named
    workload preset from :mod:`repro.workload.scenarios` to every cell
    (keyword ``overrides`` win over the preset).  Cells killed by a
    worker-process death are retried up to ``max_retries`` times with
    exponential backoff (``retry_backoff`` base); ``faults`` injects a
    deterministic :class:`~repro.faults.FaultPlan` (``None`` = disabled).
    Any :class:`~repro.experiments.config.ExperimentConfig` field can be
    overridden by keyword (applied to every cell of the sweep)::

        from repro import run_campaign
        campaign = run_campaign(["dsmf", "dheft"], seeds=range(1, 5), jobs=4,
                                scenario="poisson-steady", n_nodes=80,
                                total_time=12 * 3600.0)
        for run in campaign:
            print(run.label, run.result.summary())
    """
    from repro.experiments.campaign import CampaignRunner, sweep_specs
    from repro.faults import NULL_FAULTS

    if scenario is not None:
        from repro.experiments.config import ExperimentConfig
        from repro.workload.scenarios import apply_scenario

        base = apply_scenario(base if base is not None else ExperimentConfig(), scenario)
    specs = sweep_specs(algorithms, seeds, base=base, **overrides)
    runner = CampaignRunner(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, progress=progress,
        max_retries=max_retries, retry_backoff=retry_backoff,
        faults=NULL_FAULTS if faults is None else faults,
    )
    return runner.run(specs)


def run_sweep(
    scenarios: "Sequence[str]",
    algorithms: "Sequence[str]" = ("dsmf", "dheft", "heft", "smf"),
    seeds: "Sequence[int]" = (1,),
    base: "Optional[ExperimentConfig]" = None,
    threshold: float = 0.95,
    resolution: float = 0.25,
    max_scale: float = 8.0,
    jobs: int = 1,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
    **overrides,
) -> "dict":
    """Bisect each heuristic's saturation point on the named scenarios.

    The adaptive capacity sweep (:mod:`repro.experiments.sweep`): per
    (scenario × heuristic), the submission rate is scaled via the
    ``workload_scale`` config knob — doubling until the mean completion
    rate over ``seeds`` drops below ``threshold``, then bisecting the
    bracket to ``resolution``.  Every probe is a cached campaign cell, so
    repeated/overlapping sweeps replay instantly.  Returns the JSON-ready
    capacity-envelope report (render it with
    :func:`repro.experiments.sweep.format_envelope`)::

        from repro import run_sweep
        report = run_sweep(["paper-fig4"], ["dsmf", "heft"], seeds=[1, 2])
    """
    from repro.experiments.sweep import SweepSettings
    from repro.experiments.sweep import run_sweep as _run

    settings = SweepSettings(
        threshold=threshold,
        resolution=resolution,
        max_scale=max_scale,
        seeds=tuple(int(s) for s in seeds),
    )
    return _run(
        scenarios,
        algorithms,
        base=base,
        settings=settings,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
        **overrides,
    )


def run_manifest(
    manifest: "dict",
    jobs: int = 1,
    cache_dir=None,
    use_cache: bool = True,
    progress: "Optional[Callable[[CampaignRun], None]]" = None,
) -> "CampaignResult":
    """Execute a service-style JSON campaign manifest inline.

    The same validation the HTTP service applies to ``POST /campaigns``
    (:mod:`repro.service.schemas`), without a server: ``manifest`` is a
    plain dict with optional ``scenario``, ``algorithms``, ``seeds`` and
    ``overrides`` keys.  Raises
    :class:`~repro.service.schemas.ManifestError` — a ``ValueError``
    subclass — on any invalid manifest::

        from repro import run_manifest
        campaign = run_manifest({"scenario": "poisson-steady",
                                 "algorithms": ["dsmf"], "seeds": [1, 2],
                                 "overrides": {"n_nodes": 40}}, jobs=2)
    """
    from repro.experiments.campaign import CampaignRunner
    from repro.service.schemas import manifest_specs

    specs = manifest_specs(manifest)
    runner = CampaignRunner(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )
    return runner.run(specs)
