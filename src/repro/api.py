"""Top-level convenience API.

Thin wrappers so a downstream user can run a simulation in three lines
without touching the experiment plumbing::

    from repro import quick_run
    result = quick_run(algorithm="dsmf", n_nodes=60, seed=7)
    print(result.summary())
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig
    from repro.metrics.collectors import RunResult

__all__ = ["available_algorithms", "quick_run", "run_experiment"]


def available_algorithms() -> list[str]:
    """Names accepted by ``quick_run``/``run_experiment`` (the paper's
    eight algorithms plus the FCFS second-phase ablation bundles)."""
    from repro.core.heuristics.registry import algorithm_names

    return algorithm_names()


def run_experiment(config: "ExperimentConfig") -> "RunResult":
    """Build a P2P grid system from ``config``, run it, return the metrics."""
    from repro.grid.system import P2PGridSystem

    system = P2PGridSystem(config)
    return system.run()


def quick_run(
    algorithm: str = "dsmf",
    n_nodes: int = 60,
    load_factor: int = 2,
    duration_hours: float = 12.0,
    seed: int = 1,
    **overrides,
) -> "RunResult":
    """One-call simulation with small-scale defaults (see README quickstart).

    Any :class:`~repro.experiments.config.ExperimentConfig` field can be
    overridden by keyword.
    """
    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig(
        algorithm=algorithm,
        n_nodes=n_nodes,
        load_factor=load_factor,
        total_time=duration_hours * 3600.0,
        seed=seed,
        **overrides,
    )
    return run_experiment(config)
