"""Data and image transfers (substrate S11, paper §II.A steps 3/7/8).

The paper assumes dependent-data transmissions toward an execution node
"could be performed concurrently on the network" — transfers do not contend
with each other, and the slowest inbound transfer determines the task's
longest transmission delay.  Each transfer is therefore a single simulator
event completing after ``size/bandwidth + latency`` seconds on the
ground-truth topology.

An optional *contention* mode (an extension beyond the paper, exercised by
the ablation benches) divides a node's inbound capacity among its active
inbound transfers by rescheduling completions whenever the active set
changes (processor-sharing approximation).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.topology import Topology
from repro.sim.engine import Event, Simulator

__all__ = ["Transfer", "TransferManager"]


class Transfer:
    """One in-flight data movement."""

    __slots__ = (
        "src",
        "dst",
        "megabits",
        "on_complete",
        "event",
        "done",
        "remaining",
        "armed_at",
        "rate",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        megabits: float,
        on_complete: Callable[[], None],
    ):
        self.src = src
        self.dst = dst
        self.megabits = megabits
        self.on_complete = on_complete
        self.event: Optional[Event] = None
        self.done = False
        self.remaining = megabits
        self.armed_at = 0.0
        self.rate = 0.0

    def cancel(self) -> None:
        """Abort the transfer (destination churned out)."""
        if self.event is not None:
            self.event.cancel()
            self.event = None


class TransferManager:
    """Schedules transfer completions and tracks them per destination."""

    def __init__(self, sim: Simulator, topology: Topology, contention: bool = False):
        self.sim = sim
        self.topology = topology
        self.contention = contention
        #: active transfers keyed by destination (for churn cancellation).
        self.inbound: dict[int, set[Transfer]] = {}
        self.started = 0
        self.completed = 0
        self.cancelled = 0
        self.bytes_moved = 0.0
        #: currently in-flight transfers and the highest count ever seen
        #: (observability only — never read by the simulation).
        self.active_now = 0
        self.peak_active = 0

    # ------------------------------------------------------------------ API
    def start(
        self, src: int, dst: int, megabits: float, on_complete: Callable[[], None]
    ) -> Transfer:
        """Begin moving ``megabits`` from ``src`` to ``dst``.

        Local or empty transfers complete via a zero-delay event so callers
        get uniform asynchronous semantics.
        """
        tr = Transfer(src, dst, megabits, on_complete)
        group = self.inbound.get(dst)
        if group is None:
            group = self.inbound[dst] = set()
        group.add(tr)
        self.started += 1
        self.active_now += 1
        if self.active_now > self.peak_active:
            self.peak_active = self.active_now
        if self.contention and megabits > 0.0 and src != dst:
            self._arm_contended(dst)
        else:
            delay = self.topology.transfer_time(src, dst, megabits)
            tr.event = self.sim.schedule(delay, lambda: self._finish(tr), label="xfer")
        return tr

    def cancel_inbound(self, dst: int) -> int:
        """Cancel every in-flight transfer into ``dst`` (node departed)."""
        transfers = self.inbound.pop(dst, set())
        for tr in transfers:
            tr.cancel()
        self.cancelled += len(transfers)
        self.active_now -= len(transfers)
        return len(transfers)

    def active_count(self, dst: int) -> int:
        """Number of in-flight transfers into ``dst``."""
        return len(self.inbound.get(dst, ()))

    # ------------------------------------------------------------ internals
    def _finish(self, tr: Transfer) -> None:
        if tr.done:
            return
        tr.done = True
        tr.remaining = 0.0
        group = self.inbound.get(tr.dst)
        if group is not None:
            group.discard(tr)
            if not group:
                del self.inbound[tr.dst]
        self.completed += 1
        self.active_now -= 1
        self.bytes_moved += tr.megabits
        tr.on_complete()
        if self.contention:
            self._arm_contended(tr.dst)

    # ---- contention mode (extension) --------------------------------------
    def _arm_contended(self, dst: int) -> None:
        """Re-plan completions for ``dst`` under processor sharing.

        The inbound capacity of each active transfer is its path bandwidth
        divided by the number of concurrent inbound flows; whenever the
        active set changes all pending completion events are re-derived
        from the remaining volumes.
        """
        group = self.inbound.get(dst)
        if not group:
            return
        active = [t for t in group if not t.done]
        n = len(active)
        now = self.sim.now
        for tr in active:
            if tr.event is not None:
                # Credit progress made at the previous rate before re-arming.
                tr.event.cancel()
                if tr.rate > 0.0:
                    tr.remaining = max(0.0, tr.remaining - tr.rate * (now - tr.armed_at))
            if tr.megabits <= 0.0 or tr.src == tr.dst or tr.remaining <= 0.0:
                tr.rate = 0.0
                tr.event = self.sim.schedule(0.0, lambda t=tr: self._finish(t), label="xfer0")
                continue
            bw = self.topology.bandwidth(tr.src, tr.dst) / n
            delay = tr.remaining / bw + self.topology.latency(tr.src, tr.dst)
            tr.armed_at = now
            tr.rate = bw
            tr.event = self.sim.schedule(delay, lambda t=tr: self._finish(t), label="xferC")
