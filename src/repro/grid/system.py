"""The complete P2P grid simulation (substrate S12): everything wired up.

:class:`P2PGridSystem` builds — from one
:class:`~repro.experiments.config.ExperimentConfig` — the Waxman topology,
the peer nodes with Table I capacities, the workload submission plan
(via :mod:`repro.workload`: pluggable sources × arrival processes), the
mixed gossip protocol, the scheduling algorithm bundle and (when df > 0)
the churn process, then runs the discrete-event simulation and returns a
:class:`~repro.metrics.collectors.RunResult`.

Submissions are discrete events: each distinct submission instant gets one
``submit`` event that creates the :class:`WorkflowExecution`\\ s arriving
then (the paper's batch-at-t0 workload is the special case of a single
event at t = 0, replayed bit-identically).  Workflows whose submission
time lies beyond the horizon are never created.

Execution semantics implemented here (paper §II.A, Fig. 1):

* phase 1 dispatches migrate a task (image transfer home→target) and start
  the dependent-data transfers from the precedents' nodes (steps 6–8);
* a ready-set task becomes *runnable* when image and data have all arrived
  (step 9); when the target CPU is free the bundle's phase-2 policy picks
  among runnable tasks (Algorithm 2);
* each node's CPU is non-sharable and non-preemptive — one task at a time;
* virtual (zero-cost normalization) tasks complete instantly at the home
  node and are never migrated;
* full-ahead baselines dispatch every task at t=0 per their static plan,
  with each data transfer starting the moment its producer finishes.
"""

from __future__ import annotations

import gc
import time as _wallclock
from typing import Optional

import numpy as np

from repro.availability.models import ChurnModel, make_churn_model
from repro.availability.recovery import make_recovery_policy
from repro.availability.trace import AvailabilityEvent
from repro.core.dual_phase import Phase1Runner
from repro.core.estimates import LandmarkBandwidth, OracleBandwidth
from repro.core.fullahead.planner import GlobalView
from repro.core.heuristics.base import DispatchDecision
from repro.core.heuristics.registry import get_bundle
from repro.experiments.config import ExperimentConfig
from repro.gossip.aggregation import AggregationGossip
from repro.gossip.epidemic import EpidemicGossip
from repro.gossip.newscast import NewscastOverlay
from repro.grid.node import PeerNode
from repro.grid.state import TaskDispatch, WorkflowExecution, WorkflowStatus
from repro.grid.transfers import TransferManager
from repro.metrics.collectors import MetricsCollector, RunResult, WorkflowRecord
from repro.obs.telemetry import make_telemetry
from repro.net.landmarks import LandmarkEstimator
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.periodic import PeriodicActivity
from repro.sim.rng import RngHub
from repro.workflow.analysis import expected_finish_time
from repro.workload.build import WorkflowSubmission, build_submissions

__all__ = ["P2PGridSystem"]


class P2PGridSystem:
    """One simulated P2P grid run."""

    def __init__(
        self, config: ExperimentConfig, workflows=None, submissions=None, telemetry=None
    ):
        """Build the full system.

        Parameters
        ----------
        config:
            The experiment description.
        workflows:
            Optional explicit list of ``(home_id, Workflow)`` pairs, all
            submitted at t = 0 (shorthand for ``submissions``).
        submissions:
            Optional explicit list of
            :class:`~repro.workload.build.WorkflowSubmission` — full
            control over what arrives where and when (trace replay).  By
            default the plan is built from the config's workload source ×
            arrival process (the paper default: ``load_factor * n_nodes``
            §IV.A random workflows, all at t = 0).
        telemetry:
            Optional explicit telemetry backend (see
            :mod:`repro.obs.telemetry`).  Defaults to a live backend when
            ``config.telemetry`` is set, else the shared no-op null
            backend.  Telemetry only observes — it never draws randomness
            or feeds decisions, so enabling it leaves results
            bit-identical.
        """
        self.config = config
        self.sim = Simulator()
        self.telemetry = telemetry if telemetry is not None else make_telemetry(
            getattr(config, "telemetry", False)
        )
        #: wall-clock anchors for the events/s series (telemetry only)
        self._tm_last_wall: Optional[float] = None
        self._tm_last_events = 0
        self.rng = RngHub(config.seed)
        self.bundle = get_bundle(config.algorithm)

        # ----------------------------------------------------- network (S2-S4)
        self.topology = Topology.waxman(
            config.n_nodes,
            self.rng.stream("topology"),
            alpha=config.waxman_alpha,
            beta=config.waxman_beta,
            bw_min=config.bw_min,
            bw_max=config.bw_max,
            plane_size=config.plane_size,
        )
        self.landmarks = LandmarkEstimator(
            self.topology, self.rng.stream("landmarks"), n_landmarks=config.n_landmarks
        )
        if config.use_landmark_bandwidth:
            self.scheduler_bandwidth = LandmarkBandwidth(self.landmarks, self.topology)
        else:
            self.scheduler_bandwidth = OracleBandwidth(self.topology)

        # ------------------------------------------------------- nodes (S10)
        cap_rng = self.rng.stream("capacities")
        caps = cap_rng.choice(np.asarray(config.capacities), size=config.n_nodes)
        dynamic = config.churn_enabled()
        n_perm = (
            int(round(config.permanent_fraction * config.n_nodes))
            if dynamic
            else config.n_nodes
        )
        n_perm = max(1, min(config.n_nodes, n_perm))
        self.nodes: list[PeerNode] = [
            PeerNode(
                nid=i,
                capacity=float(caps[i]),
                is_home=(i < n_perm),
                volatile=(i >= n_perm),
            )
            for i in range(config.n_nodes)
        ]
        self.home_nodes = [n for n in self.nodes if n.is_home]

        # ----------------------------------------------------- gossip (S5-S6)
        all_ids = [n.nid for n in self.nodes]
        self.overlay = NewscastOverlay(all_ids, self.rng.stream("newscast"))
        self.epidemic = EpidemicGossip(
            self.overlay,
            load_provider=self._node_state,
            rng=self.rng.stream("epidemic"),
            ttl=config.gossip_ttl,
            push_size=config.gossip_push_size,
            rss_capacity=config.rss_capacity,
            expiry=config.rss_expiry_cycles * config.gossip_interval,
        )
        self.aggregation = AggregationGossip(
            self.overlay,
            self.rng.stream("aggregation"),
            restart_cycles=config.aggregation_restart_cycles,
        )
        self.aggregation.register_metric(
            "capacity", lambda nid: self.nodes[nid].capacity
        )
        meas = self.landmarks.measurements
        finite_cap = np.nanmax(np.where(np.isfinite(meas), meas, np.nan))
        local_bw = np.minimum(meas, finite_cap).mean(axis=1)
        self.aggregation.register_metric(
            "bandwidth", lambda nid: float(local_bw[nid])
        )

        # -------------------------------------------------- workload (S7-S9)
        self._oracle_avg_capacity = float(np.mean([n.capacity for n in self.nodes]))
        self._oracle_avg_bandwidth = self.topology.mean_bandwidth()
        self.executions: dict[str, WorkflowExecution] = {}
        self.workflows_by_home: dict[int, list[WorkflowExecution]] = {
            n.nid: [] for n in self.home_nodes
        }
        if workflows is not None and submissions is not None:
            raise ValueError("pass either workflows or submissions, not both")
        if workflows is not None:
            submissions = [
                WorkflowSubmission(submit_time=0.0, home_id=h, workflow=wf)
                for h, wf in workflows
            ]
        if submissions is None:
            submissions = build_submissions(
                config, self.rng, [n.nid for n in self.home_nodes]
            )
        #: The submission plan, sorted by time (stable for equal instants).
        self.submissions: list[WorkflowSubmission] = sorted(
            submissions, key=lambda s: s.submit_time
        )
        seen_wids: set[str] = set()
        for sub in self.submissions:
            if sub.workflow.wid in seen_wids:
                raise ValueError(
                    f"duplicate workflow id {sub.workflow.wid!r} in workload"
                )
            seen_wids.add(sub.workflow.wid)
            if not (0 <= sub.home_id < config.n_nodes) or not self.nodes[
                sub.home_id
            ].is_home:
                raise ValueError(
                    f"workflow {sub.workflow.wid} submitted at node "
                    f"{sub.home_id}, which is not a home node "
                    f"(homes are 0..{len(self.home_nodes) - 1})"
                )
        # t=0 submissions are registered now (the seed's contract: batch
        # workloads are inspectable right after construction); later
        # arrivals materialize when their submit event fires.
        for sub in self.submissions:
            if sub.submit_time == 0.0:
                self._materialize(sub)

        # ------------------------------------------------------ runtime state
        self.transfers = TransferManager(
            self.sim, self.topology, contention=config.transfer_contention
        )
        self.dispatch_index: dict[tuple[str, int], TaskDispatch] = {}
        self._seq = 0
        #: full-ahead: (wid, producer_tid) -> consumers awaiting its data.
        self._deferred_edges: dict[tuple[str, int], list[tuple[TaskDispatch, float]]] = {}
        self.collector = MetricsCollector(n_nodes=config.n_nodes)
        self.phase1 = Phase1Runner(self)
        #: Realized availability transitions, in event order — saveable via
        #: :func:`repro.availability.save_availability_trace` and replayable
        #: through the ``trace`` churn model.
        self.availability_events: list[AvailabilityEvent] = []
        self._alive_count = config.n_nodes
        #: Lost-to-churn task keys still awaiting re-entry + completion —
        #: a task counts as *recovered* only when it actually finishes.
        self._lost_task_keys: set[tuple[str, int]] = set()
        self.recovery = make_recovery_policy(config.recovery_policy)
        self.churn: Optional[ChurnModel] = (
            make_churn_model(self, self.rng.stream("churn")) if dynamic else None
        )
        self._fullahead_plan = None
        self._ran = False
        # Static per-node arrays for full-ahead GlobalViews: ids and
        # capacities never change mid-run, so submit-time (re)planning only
        # refreshes the load vector instead of rebuilding everything.
        self._node_ids_arr = np.asarray([n.nid for n in self.nodes], dtype=np.int64)
        self._capacities_arr = np.asarray([n.capacity for n in self.nodes])

    # ------------------------------------------------------------------ setup
    def _node_state(self, nid: int) -> tuple[float, float]:
        node = self.nodes[nid]
        return node.total_load(), node.capacity

    # ----------------------------------------------------------- gossip views
    def avg_capacity_estimate(self, nid: int) -> float:
        """The node's decentralized estimate of mean capacity (MIPS)."""
        est = self.aggregation.estimate("capacity", nid)
        return est if est > 0 else self._oracle_avg_capacity

    def avg_bandwidth_estimate(self, nid: int) -> float:
        """The node's decentralized estimate of mean bandwidth (Mb/s)."""
        est = self.aggregation.estimate("bandwidth", nid)
        return est if est > 0 else max(self._oracle_avg_bandwidth, 1e-9)

    # ------------------------------------------------------------------- run
    def run(self) -> RunResult:
        """Execute the simulation and return the collected metrics."""
        if self._ran:
            raise RuntimeError("a P2PGridSystem can only run once")
        self._ran = True
        cfg = self.config
        started = _wallclock.perf_counter()

        # Same-instant ordering within a tick: gossip, churn, phase-1,
        # metrics — achieved by creation order (the event queue is FIFO at
        # equal timestamps).
        PeriodicActivity(self.sim, cfg.gossip_interval, self._gossip_cycle, label="gossip")
        if self.churn is not None:
            # The model schedules its own events (the paper-interval model
            # arms the same periodic activity the legacy code did here, so
            # the default event sequence is unchanged).
            self.churn.start()
        if not self.bundle.full_ahead:
            PeriodicActivity(
                self.sim, cfg.schedule_interval, self._phase1_cycle, label="phase1"
            )
        PeriodicActivity(
            self.sim, cfg.metrics_interval, self._metrics_cycle, label="metrics"
        )

        # One submit event per distinct submission instant (the paper's
        # batch workload is exactly one event at t=0, matching the seed's
        # event sequence); arrivals beyond the horizon are dropped.  For
        # full-ahead bundles each group is followed by its planning event,
        # mirroring the seed's submit-then-plan ordering at t=0.
        for when, group in self._submission_groups():
            self.sim.schedule(when, lambda g=group: self._submit_group(g), label="submit")
            if self.bundle.full_ahead:
                self.sim.schedule(
                    when, lambda g=group: self._fullahead_plan_group(g),
                    label="fullahead",
                )

        # The event loop allocates container-heavy but almost entirely
        # acyclic garbage (records, digests, eviction rebuilds) that
        # reference counting already reclaims; the default gen-0 threshold
        # (700) makes the cycle collector sweep hundreds of times per run
        # to find only the occasional completion-event closure cycle.
        # Raising the threshold for the duration of the loop removes that
        # overhead (~5-10% wall) at a bounded, transient RSS cost; the
        # previous setting is always restored.
        gc_thresholds = gc.get_threshold()
        gc.set_threshold(100_000, gc_thresholds[1], gc_thresholds[2])
        try:
            self.sim.run(until=cfg.total_time)
        finally:
            gc.set_threshold(*gc_thresholds)
        self._finalize_records()
        self.collector.sample(
            self.sim.now,
            rss_mean=self.epidemic.mean_known_nodes(),
            alive_nodes=self._alive_count,
        )
        wall = _wallclock.perf_counter() - started
        avg_alive = self.collector.avg_alive_fraction(cfg.total_time)
        return RunResult(
            algorithm=cfg.algorithm,
            seed=cfg.seed,
            n_nodes=cfg.n_nodes,
            n_workflows=len(self.executions),
            total_time=cfg.total_time,
            act=self.collector.act,
            ae=self.collector.ae,
            n_done=self.collector.n_done,
            n_failed=self.collector.n_failed,
            events_executed=self.sim.events_executed,
            wall_seconds=wall,
            rss_mean=self.epidemic.mean_known_nodes(),
            records=self.collector.records,
            samples=self.collector.samples,
            config=cfg.describe(),
            n_departures=self.collector.n_departures,
            n_revivals=self.collector.n_revivals,
            n_tasks_lost=self.collector.n_tasks_lost,
            n_tasks_recovered=self.collector.n_tasks_recovered,
            avg_alive_fraction=avg_alive,
            availability_ae=self.collector.ae * avg_alive,
            telemetry=self._telemetry_snapshot(wall),
        )

    def _telemetry_snapshot(self, wall: float):
        """Fold subsystem counters into a snapshot (None when disabled).

        The always-on subsystem counters (engine, gossip, transfers,
        phase 1, churn census) cost nothing extra to read here; the
        histograms/series were accumulated during the run only when the
        backend was live.
        """
        t = self.telemetry
        if not t.enabled:
            return None
        sim = self.sim
        t.inc("sim.events_executed", float(sim.events_executed))
        t.inc("sim.events_cancelled", float(sim.events_cancelled))
        t.inc("sim.events_rescheduled", float(sim.events_rescheduled))
        t.gauge("sim.queue_depth_final", float(sim.queue_depth()))
        t.gauge("sim.events_per_sec_wall", sim.events_executed / wall if wall > 0 else 0.0)
        ep = self.epidemic
        t.inc("gossip.digests_sent", float(ep.messages_sent))
        t.inc("gossip.records_shipped", float(ep.records_shipped))
        t.inc("gossip.records_merged", float(ep.records_merged))
        t.inc("gossip.evictions", float(ep.evictions))
        t.gauge("gossip.rss_mean", ep.mean_known_nodes())
        overlay = self.overlay
        t.inc("gossip.newscast_shuffles", float(overlay.shuffles))
        t.inc("gossip.newscast_reseeds", float(overlay.reseeds))
        t.gauge("gossip.newscast_view_age_seconds", overlay.mean_descriptor_age(sim.now))
        p1 = self.phase1
        t.inc("sched.phase1_cycles", float(p1.cycles_run))
        t.inc("sched.phase1_dispatches", float(p1.dispatches))
        t.inc("sched.dead_target_skips", float(p1.dead_target_skips))
        tr = self.transfers
        t.inc("transfers.started", float(tr.started))
        t.inc("transfers.completed", float(tr.completed))
        t.inc("transfers.cancelled", float(tr.cancelled))
        t.inc("transfers.megabits_moved", tr.bytes_moved)
        t.gauge("transfers.inflight_peak", float(tr.peak_active))
        col = self.collector
        t.inc("churn.departures", float(col.n_departures))
        t.inc("churn.revivals", float(col.n_revivals))
        t.inc("churn.tasks_lost", float(col.n_tasks_lost))
        t.inc("churn.tasks_recovered", float(col.n_tasks_recovered))
        t.inc("workflows.done", float(col.n_done))
        t.inc("workflows.failed", float(col.n_failed))
        t.gauge("run.wall_seconds", wall)
        return t.snapshot()

    # --------------------------------------------------------- periodic ticks
    def _gossip_cycle(self, cycle: int) -> None:
        now = self.sim.now
        self.overlay.run_cycle(now)
        self.epidemic.run_cycle(now)
        self.aggregation.run_cycle(now)

    def _phase1_cycle(self, cycle: int) -> None:
        self.phase1.run_cycle()

    def _metrics_cycle(self, cycle: int) -> None:
        self.collector.sample(
            self.sim.now,
            rss_mean=self.epidemic.mean_known_nodes(),
            alive_nodes=self._alive_count,
        )
        t = self.telemetry
        if t.enabled:
            now = self.sim.now
            depth = float(self.sim.queue_depth())
            t.gauge_max("sim.queue_depth_peak", depth)
            t.point("sim.queue_depth", now, depth)
            wall = _wallclock.perf_counter()
            executed = self.sim.events_executed
            if self._tm_last_wall is not None and wall > self._tm_last_wall:
                t.point(
                    "sim.events_per_sec_wall",
                    now,
                    (executed - self._tm_last_events) / (wall - self._tm_last_wall),
                )
            self._tm_last_wall = wall
            self._tm_last_events = executed

    # ------------------------------------------------------------ submission
    def _submission_groups(self) -> list[tuple[float, list[WorkflowSubmission]]]:
        """Submissions grouped by instant, horizon-filtered, in time order."""
        groups: list[tuple[float, list[WorkflowSubmission]]] = []
        for sub in self.submissions:
            if sub.submit_time > self.config.total_time:
                continue
            if groups and groups[-1][0] == sub.submit_time:
                groups[-1][1].append(sub)
            else:
                groups.append((sub.submit_time, [sub]))
        return groups

    def _materialize(self, sub: WorkflowSubmission) -> WorkflowExecution:
        """Register one submission as a live workflow execution."""
        wf = sub.workflow
        eft = expected_finish_time(
            wf, self._oracle_avg_capacity, self._oracle_avg_bandwidth
        )
        wx = WorkflowExecution(wf, sub.home_id, submit_time=sub.submit_time, eft=eft)
        self.executions[wf.wid] = wx
        self.workflows_by_home.setdefault(sub.home_id, []).append(wx)
        return wx

    def _submit_group(self, group: list[WorkflowSubmission]) -> None:
        """One submission instant: the group's workflows enter the system."""
        arrived = [
            self.executions.get(sub.workflow.wid) or self._materialize(sub)
            for sub in group
        ]
        for wx in arrived:
            self._absorb_virtual_and_check(wx)
        if self.config.immediate_dispatch and not self.bundle.full_ahead:
            for home in self.home_nodes:
                self.phase1.run_for_home(home.nid)

    # --------------------------------------------------------- JIT dispatching
    def execute_decision(self, decision: DispatchDecision) -> bool:
        """Migrate one task per a phase-1 decision (Algorithm 1 lines 13–15).

        Returns False when the target churned out since the gossip record
        was stamped — the task then stays a schedule point for the next
        cycle and the stale record is evicted from the home's RSS.
        """
        target = self.nodes[decision.target]
        home_id = decision.wx.home_id
        if not target.alive:
            self.epidemic.discard(home_id, decision.target)
            return False
        wx = decision.wx
        tid = decision.tid
        if wx.status is not WorkflowStatus.RUNNING or tid not in wx.schedule_points:
            return False
        inputs = wx.inputs_for(tid)
        # A precedent's data may live on a departed node.
        dead_sources = [src for src, _ in inputs if not self.nodes[src].alive]
        if dead_sources:
            if self.config.churn_mode == "suspend":
                # The data's host is temporarily offline: retry next cycle.
                return False
            # fail mode: the recovery policy decides — fail the workflow,
            # invalidate dead producers for a re-run, or (checkpoint)
            # return a patched input list re-served from the home.
            patched = self.recovery.on_dead_sources(
                self, wx, tid, inputs, dead_sources
            )
            if patched is None:
                return False
            inputs = patched

        if self.telemetry.enabled:
            stamp = self.epidemic.timestamp_of(home_id, target.nid)
            if stamp is not None:
                self.telemetry.observe(
                    "sched.rss_age_at_dispatch_seconds", self.sim.now - stamp
                )

        wx.mark_dispatched(tid)
        task = wx.wf.tasks[tid]
        dispatch = TaskDispatch(
            wid=wx.wf.wid,
            tid=tid,
            load=task.load,
            image_size=task.image_size,
            home_id=home_id,
            target_id=target.nid,
            dispatch_time=self.sim.now,
            seq=self._next_seq(),
            ms_stamp=decision.stamps.get("ms", 0.0),
            rpm_stamp=decision.stamps.get("rpm", 0.0),
            sufferage_stamp=decision.stamps.get("sufferage", 0.0),
            deadline_stamp=decision.stamps.get("deadline", 0.0),
            et_stamp=decision.stamps.get("et", 0.0),
        )
        self.dispatch_index[dispatch.key()] = dispatch
        target.enqueue(dispatch)
        self._start_input_transfers(dispatch, inputs)
        return True

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _start_input_transfers(
        self, dispatch: TaskDispatch, inputs: list[tuple[int, float]]
    ) -> None:
        """Start image + dependent-data transfers; arm readiness counting."""
        pending = 0
        target = dispatch.target_id
        if dispatch.image_size > 0.0 and dispatch.home_id != target:
            pending += 1
            self.transfers.start(
                dispatch.home_id,
                target,
                dispatch.image_size,
                lambda d=dispatch: self._transfer_arrived(d),
            )
        for src, mb in inputs:
            if mb > 0.0 and src != target:
                pending += 1
                self.transfers.start(
                    src, target, mb, lambda d=dispatch: self._transfer_arrived(d)
                )
        dispatch.pending_inputs = pending
        if pending == 0:
            dispatch.ready_time = self.sim.now
            self._try_start(self.nodes[target])

    def _transfer_arrived(self, dispatch: TaskDispatch) -> None:
        if dispatch.cancelled:
            return
        dispatch.pending_inputs -= 1
        if dispatch.pending_inputs == 0:
            dispatch.ready_time = self.sim.now
            self._try_start(self.nodes[dispatch.target_id])

    # -------------------------------------------------- phase 2 / execution
    def _try_start(self, node: PeerNode) -> None:
        """Algorithm 2: assign the CPU when it is free (paper step 4/9)."""
        if not node.alive or node.busy:
            return
        # Single pass: collect runnable tasks and lazily prune cancelled
        # entries so ready sets stay small.
        runnable = node.poll_runnable()
        if not runnable:
            return
        t = self.telemetry
        if t.enabled:
            t0 = _wallclock.perf_counter()
            dispatch = self.bundle.phase2.select(runnable, self.sim.now)
            t.observe(
                f"sched.phase2_select_seconds.{self.config.algorithm}",
                _wallclock.perf_counter() - t0,
            )
            t.inc("sched.phase2_selections")
        else:
            dispatch = self.bundle.phase2.select(runnable, self.sim.now)
        et = node.start(dispatch, self.sim.now)
        node.completion_event = self.sim.schedule(
            et, lambda n=node: self._on_cpu_complete(n), label="exec"
        )

    def _on_cpu_complete(self, node: PeerNode) -> None:
        dispatch = node.finish_running(self.sim.now)
        self._task_finished(dispatch, node)
        self._try_start(node)

    def _task_finished(self, dispatch: TaskDispatch, node: PeerNode) -> None:
        wx = self.executions[dispatch.wid]
        self.dispatch_index.pop(dispatch.key(), None)
        if wx.status is not WorkflowStatus.RUNNING:
            return  # workflow already failed; the result is discarded
        wx.mark_finished(dispatch.tid, node.nid, self.sim.now)
        if self._lost_task_keys and dispatch.key() in self._lost_task_keys:
            self._lost_task_keys.discard(dispatch.key())
            self.collector.task_recovered()
        self._absorb_virtual_and_check(wx)
        if self.bundle.full_ahead:
            self._release_deferred_edges(wx, dispatch.tid, node.nid)
        elif (
            self.config.immediate_dispatch
            and wx.status is WorkflowStatus.RUNNING
            and wx.schedule_points
        ):
            self.phase1.run_for_home(wx.home_id, only_wids={wx.wf.wid})

    def _absorb_virtual_and_check(self, wx: WorkflowExecution) -> None:
        """Complete virtual schedule points instantly; detect completion."""
        progressed = True
        while progressed:
            progressed = False
            for tid in list(wx.schedule_points):
                if wx.wf.tasks[tid].virtual:
                    wx.mark_finished(tid, wx.home_id, self.sim.now)
                    progressed = True
        if wx.status is WorkflowStatus.RUNNING and wx.is_complete:
            wx.status = WorkflowStatus.DONE
            wx.completion_time = self.sim.now
            self.collector.workflow_done(self._record(wx))

    # --------------------------------------------------- full-ahead execution
    def _fullahead_plan_group(self, group: list[WorkflowSubmission]) -> None:
        """Plan the group's just-submitted workflows centrally (global
        information at their submission instant) and dispatch everything.

        The view carries each node's resident load so mid-run arrival
        groups (streaming workloads) are planned against the occupied
        grid; at t = 0 every load is zero and this reduces to the paper's
        idle-grid plan."""
        wxs = [
            self.executions[sub.workflow.wid]
            for sub in group
            if sub.workflow.wid in self.executions
        ]
        if not wxs:
            return
        view = GlobalView(
            node_ids=self._node_ids_arr,
            capacities=self._capacities_arr,
            bandwidth=self.topology._bandwidth,
            latency=self.topology._latency,
            avg_capacity=self._oracle_avg_capacity,
            avg_bandwidth=max(self._oracle_avg_bandwidth, 1e-9),
            loads=np.asarray([n.total_load() for n in self.nodes]),
        )
        assert self.bundle.planner is not None
        plan = self.bundle.planner.plan(view, wxs)
        if self._fullahead_plan is None:
            self._fullahead_plan = plan
        else:
            self._fullahead_plan.assignment.update(plan.assignment)

        for wx in wxs:
            wf = wx.wf
            for tid in wf.topo_order:
                task = wf.tasks[tid]
                if task.virtual or tid in wx.finished:
                    continue
                target = plan.node_for(wf.wid, tid)
                self._fullahead_dispatch(wx, tid, target, plan)

    def _fullahead_dispatch(self, wx, tid: int, target: int, plan) -> None:
        """Place a task per the static plan; edge transfers start when the
        producing task finishes (full-ahead knows targets in advance)."""
        wf = wx.wf
        task = wf.tasks[tid]
        wx.schedule_points.discard(tid)
        wx.dispatched.add(tid)
        dispatch = TaskDispatch(
            wid=wf.wid,
            tid=tid,
            load=task.load,
            image_size=task.image_size,
            home_id=wx.home_id,
            target_id=target,
            dispatch_time=self.sim.now,
            seq=self._next_seq(),
        )
        self.dispatch_index[dispatch.key()] = dispatch
        node = self.nodes[target]
        node.enqueue(dispatch)

        pending = 0
        if task.image_size > 0.0 and wx.home_id != target:
            pending += 1
            self.transfers.start(
                wx.home_id,
                target,
                task.image_size,
                lambda d=dispatch: self._transfer_arrived(d),
            )
        for p, data in wf.precedents[tid].items():
            if p in wx.finished:
                # Producer already done (virtual entry at t=0): only a real
                # remote transfer delays readiness.
                src = wx.finished[p][0]
                if data > 0.0 and src != target:
                    pending += 1
                    self.transfers.start(
                        src, target, data,
                        lambda d=dispatch: self._transfer_arrived(d),
                    )
            else:
                # Every unfinished precedent holds one readiness token, even
                # for co-located / zero-data edges — otherwise a successor
                # sharing its producer's node could execute first.
                pending += 1
                self._deferred_edges.setdefault((wf.wid, p), []).append(
                    (dispatch, data)
                )
        dispatch.pending_inputs = pending
        if pending == 0:
            dispatch.ready_time = self.sim.now
            self._try_start(node)

    def _release_deferred_edges(self, wx, producer_tid: int, producer_node: int) -> None:
        """The producer finished: ship its outputs to waiting consumers (or
        release their dependency token directly when no transfer is needed)."""
        waiting = self._deferred_edges.pop((wx.wf.wid, producer_tid), None)
        if not waiting:
            return
        for consumer, data in waiting:
            if consumer.cancelled:
                continue
            if data > 0.0 and producer_node != consumer.target_id:
                self.transfers.start(
                    producer_node,
                    consumer.target_id,
                    data,
                    lambda d=consumer: self._transfer_arrived(d),
                )
            else:
                self._transfer_arrived(consumer)

    # ------------------------------------------------------------------ churn
    def _record_churn(self, kind: str, nid: int) -> None:
        """Log one availability transition and update the alive census."""
        now = self.sim.now
        self.availability_events.append(AvailabilityEvent(now, nid, kind))
        if kind == "leave":
            self._alive_count -= 1
            self.collector.node_departed(now, self._alive_count)
        else:
            self._alive_count += 1
            self.collector.node_revived(now, self._alive_count)

    def kill_node(self, nid: int) -> None:
        """Disconnect a volatile node.

        ``suspend`` churn mode (default): the node goes offline with its
        tasks — the running task's remaining execution time is frozen, the
        ready set is kept, and everything resumes on rejoin.  Workflows with
        tasks here simply stall (the paper's "large-load tasks which cannot
        be finished quickly").

        ``fail`` churn mode: resident tasks are lost; their fate is the
        recovery policy's call (fail the owning workflow, reschedule the
        lost tasks, or re-enter them from the home's dispatch checkpoint).
        """
        nid = int(nid)  # numpy scalars must not reach lookups or traces
        node = self.nodes[nid]
        if not node.alive:
            return
        node.alive = False
        self._record_churn("leave", nid)
        if self.config.churn_mode == "suspend":
            if node.completion_event is not None:
                node.suspended_remaining = max(
                    0.0, node.completion_event.time - self.sim.now
                )
                node.completion_event.cancel()
                node.completion_event = None
            # Overlay/gossip state dies with the connection; in-flight
            # inbound transfers are assumed buffered at the (returning)
            # node's NIC and complete normally.
            self.overlay.remove_node(nid)
            self.epidemic.remove_node(nid)
            self.aggregation.remove_node(nid)
            return

        if node.completion_event is not None:
            node.completion_event.cancel()
        lost = list(node.ready)
        if node.running is not None:
            lost.append(node.running)
        node.ready.clear()
        node.running = None
        node.completion_event = None
        node.invalidate_load()
        self.transfers.cancel_inbound(nid)
        self.overlay.remove_node(nid)
        self.epidemic.remove_node(nid)
        self.aggregation.remove_node(nid)
        for dispatch in lost:
            if dispatch.cancelled:
                continue
            dispatch.cancelled = True
            self.dispatch_index.pop(dispatch.key(), None)
            wx = self.executions[dispatch.wid]
            if wx.status is not WorkflowStatus.RUNNING:
                continue
            self.collector.task_lost()
            self._lost_task_keys.add(dispatch.key())
            self.recovery.on_task_lost(self, wx, dispatch.tid, nid)

    def revive_node(self, nid: int) -> None:
        """A departed node rejoins.

        ``suspend`` mode: picks up exactly where it left off (the frozen
        running task is re-armed, queued tasks become eligible again).
        ``fail`` mode: returns fresh and empty.
        """
        nid = int(nid)
        node = self.nodes[nid]
        if node.alive:
            return
        self._record_churn("join", nid)
        if self.config.churn_mode == "suspend":
            node.alive = True
            node.epoch += 1
            if node.running is not None:
                remaining = node.suspended_remaining or 0.0
                node.suspended_remaining = None
                node.completion_event = self.sim.schedule(
                    remaining, lambda n=node: self._on_cpu_complete(n), label="exec"
                )
            else:
                self._try_start(node)
        else:
            node.reset_for_rejoin(node.epoch + 1)
        self.overlay.add_node(nid, self.sim.now)
        self.epidemic.add_node(nid)
        self.aggregation.add_node(nid)

    def _reschedule_lost(self, wx, tid: int, dead_node: int) -> None:
        """Extension (paper's future work): restore lost tasks as schedule
        points, invalidating finished tasks whose output data died with the
        node and is still needed."""
        wx.invalidate_task(tid)
        for ftid, (fnode, _) in list(wx.finished.items()):
            if fnode != dead_node:
                continue
            needed = any(
                s not in wx.finished and s not in wx.dispatched
                for s in wx.wf.successors[ftid]
            )
            if needed:
                wx.invalidate_task(ftid)

    def _fail_workflow(self, wx, reason: str) -> None:
        wx.status = WorkflowStatus.FAILED
        wx.failure_reason = reason
        # Cancel sibling dispatches still queued anywhere (running tasks
        # are non-preemptive and run to completion; their results are
        # simply discarded).
        for tid in wx.wf.tasks:
            dispatch = self.dispatch_index.pop((wx.wf.wid, tid), None)
            if dispatch is not None and dispatch.start_time is None:
                dispatch.cancelled = True
                self.nodes[dispatch.target_id].remove(dispatch)
        self.collector.workflow_failed(self._record(wx))

    # ---------------------------------------------------------------- records
    def _record(self, wx) -> WorkflowRecord:
        return WorkflowRecord(
            wid=wx.wf.wid,
            home_id=wx.home_id,
            n_tasks=wx.wf.n_tasks,
            eft=wx.eft,
            submit_time=wx.submit_time,
            status=wx.status.value,
            completion_time=wx.completion_time,
            failure_reason=wx.failure_reason,
        )

    def _finalize_records(self) -> None:
        """Workflows still running at the horizon are recorded as such."""
        for wx in self.executions.values():
            if wx.status is WorkflowStatus.RUNNING:
                self.collector.records.append(self._record(wx))
