"""P2P grid runtime (substrates S10–S13).

* :mod:`repro.grid.state` — workflow execution state and dispatched-task
  records.
* :mod:`repro.grid.node` — peer nodes (every node is both a scheduler node
  and a resource node with a non-sharable, non-preemptive CPU).
* :mod:`repro.grid.transfers` — concurrent data/image transfers.
* :mod:`repro.grid.churn` — the dynamic-factor join/leave process.
* :mod:`repro.grid.system` — wires topology, gossip, workflows, schedulers
  and metrics into one runnable simulation.
"""

from repro.grid.state import TaskDispatch, WorkflowExecution, WorkflowStatus
from repro.grid.node import PeerNode

__all__ = [
    "P2PGridSystem",
    "PeerNode",
    "TaskDispatch",
    "WorkflowExecution",
    "WorkflowStatus",
]


def __getattr__(name: str):
    # P2PGridSystem is imported lazily: repro.grid.system pulls in the core
    # scheduling engine, which itself depends on repro.grid.state — eager
    # import here would close an import cycle.
    if name == "P2PGridSystem":
        from repro.grid.system import P2PGridSystem

        return P2PGridSystem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
