"""Runtime state: workflow executions and dispatched tasks.

:class:`WorkflowExecution` tracks one submitted workflow at its home node —
which tasks finished where, which are dispatched, and the current
*schedule-point* set (tasks whose precedents are all finished but which are
not yet dispatched), maintained incrementally so Algorithm 1 never rescans
the whole DAG.

:class:`TaskDispatch` is the unit sitting in a resource node's ready set
RDS(p): the task plus the priority stamps the first scheduling phase
computed for it (the paper migrates each task "together with its rest path
makespan and its workflow's makespan"; the other heuristics stamp their own
keys the same way).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.workflow.dag import Workflow

__all__ = ["TaskDispatch", "WorkflowExecution", "WorkflowStatus"]


class WorkflowStatus(enum.Enum):
    """Lifecycle of a submitted workflow."""

    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class TaskDispatch:
    """A task migrated to a resource node, waiting in its ready set.

    Priority stamps (``ms_stamp``, ``rpm_stamp``, ``sufferage_stamp``,
    ``deadline_stamp``, ``et_stamp``) are whatever the phase-1 policy
    computed at dispatch time; the phase-2 policy of the same algorithm
    bundle reads the matching stamp.  ``pending_inputs`` counts transfers
    (image + dependent data) still in flight; the task becomes *runnable*
    when it reaches zero.

    Dispatches are the highest-volume mutable state object (one per
    migrated task, touched by every phase-2 scan and ready-set removal),
    so this is a hand-rolled ``__slots__`` pool object rather than a
    dataclass: construction is plain attribute assignment on the dispatch
    hot path, and identity comparison (no generated ``__eq__``) keeps
    ``list.remove`` on ready sets pointer-fast — dispatch identity is the
    object itself; ``key()`` is the global name.
    """

    __slots__ = (
        "wid", "tid", "load", "image_size", "home_id", "target_id",
        "dispatch_time", "seq", "ms_stamp", "rpm_stamp", "sufferage_stamp",
        "deadline_stamp", "et_stamp", "pending_inputs", "ready_time",
        "start_time", "finish_time", "cancelled",
    )

    def __init__(
        self,
        wid: str,
        tid: int,
        load: float,
        image_size: float,
        home_id: int,
        target_id: int,
        dispatch_time: float,
        seq: int,
        ms_stamp: float = 0.0,
        rpm_stamp: float = 0.0,
        sufferage_stamp: float = 0.0,
        deadline_stamp: float = 0.0,
        et_stamp: float = 0.0,
        pending_inputs: int = 0,
        ready_time: Optional[float] = None,
        start_time: Optional[float] = None,
        finish_time: Optional[float] = None,
        cancelled: bool = False,
    ):
        self.wid = wid
        self.tid = tid
        self.load = load
        self.image_size = image_size
        self.home_id = home_id
        self.target_id = target_id
        self.dispatch_time = dispatch_time
        self.seq = seq
        self.ms_stamp = ms_stamp
        self.rpm_stamp = rpm_stamp
        self.sufferage_stamp = sufferage_stamp
        self.deadline_stamp = deadline_stamp
        self.et_stamp = et_stamp
        self.pending_inputs = pending_inputs
        self.ready_time = ready_time
        self.start_time = start_time
        self.finish_time = finish_time
        self.cancelled = cancelled

    @property
    def runnable(self) -> bool:
        """All inputs arrived, not yet started, not cancelled."""
        return (
            self.pending_inputs == 0
            and self.start_time is None
            and not self.cancelled
        )

    def key(self) -> tuple[str, int]:
        """Global identity of the dispatched task."""
        return (self.wid, self.tid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskDispatch({self.wid!r}, tid={self.tid}, "
            f"target={self.target_id}, pending={self.pending_inputs})"
        )


class WorkflowExecution:
    """Home-node view of one submitted workflow ``f_ij``.

    Parameters
    ----------
    wf:
        The (normalized) workflow DAG.
    home_id:
        Submission site (scheduler node).
    submit_time:
        Simulated submission instant.
    eft:
        Expected finish time (Eq. 1) under system-wide averages — the
        denominator baseline of the efficiency metric.
    """

    __slots__ = (
        "wf",
        "home_id",
        "submit_time",
        "eft",
        "status",
        "completion_time",
        "failure_reason",
        "finished",
        "dispatched",
        "_pending_precs",
        "schedule_points",
        "_inputs_cache",
    )

    def __init__(self, wf: Workflow, home_id: int, submit_time: float, eft: float):
        self.wf = wf
        self.home_id = home_id
        self.submit_time = submit_time
        self.eft = eft
        self.status = WorkflowStatus.RUNNING
        self.completion_time: Optional[float] = None
        self.failure_reason: str = ""
        #: tid -> (node_id, finish_time) for completed tasks.
        self.finished: dict[int, tuple[int, float]] = {}
        #: tids dispatched (phase 1 done) but not yet finished.
        self.dispatched: set[int] = set()
        #: unfinished-precedent counts, maintained incrementally.
        self._pending_precs: dict[int, int] = {
            tid: len(wf.precedents[tid]) for tid in wf.tasks
        }
        #: current schedule points (ready to dispatch, not yet dispatched).
        self.schedule_points: set[int] = {
            tid for tid, n in self._pending_precs.items() if n == 0
        }
        #: tid -> cached ``inputs_for`` result; valid while the precedents'
        #: locations stand (cleared wholesale on churn invalidation).
        self._inputs_cache: dict[int, list[tuple[int, float]]] = {}

    # --------------------------------------------------------------- events
    def mark_dispatched(self, tid: int) -> None:
        """Phase 1 sent ``tid`` to a resource node."""
        if tid not in self.schedule_points:
            raise ValueError(f"task {tid} of {self.wf.wid} is not a schedule point")
        self.schedule_points.discard(tid)
        self.dispatched.add(tid)

    def mark_finished(self, tid: int, node_id: int, time: float) -> list[int]:
        """Record completion of ``tid`` at ``node_id``.

        Returns the tasks that *became* schedule points (all precedents now
        finished).
        """
        if tid in self.finished:
            raise ValueError(f"task {tid} of {self.wf.wid} finished twice")
        self.finished[tid] = (node_id, time)
        self.dispatched.discard(tid)
        self.schedule_points.discard(tid)  # virtual tasks finish undispatched
        newly: list[int] = []
        for s in self.wf.successors[tid]:
            self._pending_precs[s] -= 1
            if (
                self._pending_precs[s] == 0
                and s not in self.finished
                and s not in self.dispatched
            ):
                self.schedule_points.add(s)
                newly.append(s)
        return newly

    def invalidate_task(self, tid: int) -> None:
        """Rescheduling extension: forget a previously finished/dispatched
        task (its node churned out), restoring precedence bookkeeping."""
        # Churn moved/erased finished outputs: every cached input-location
        # list is suspect, so drop them all (churn is rare; the cache is a
        # steady-state optimization).
        self._inputs_cache.clear()
        if tid in self.finished:
            del self.finished[tid]
            for s in self.wf.successors[tid]:
                self._pending_precs[s] += 1
                self.schedule_points.discard(s)
        self.dispatched.discard(tid)
        if self._pending_precs[tid] == 0:
            self.schedule_points.add(tid)

    # -------------------------------------------------------------- queries
    @property
    def is_complete(self) -> bool:
        """True when every task (including the exit task) has finished."""
        return len(self.finished) == len(self.wf.tasks)

    def node_of(self, tid: int) -> int:
        """Node that executed a finished task (the data's location)."""
        return self.finished[tid][0]

    def inputs_for(self, tid: int) -> list[tuple[int, float]]:
        """``(source_node, megabits)`` per dependent-data edge into ``tid``.

        Only valid for schedule points (all precedents finished).  The
        result is cached — a schedule point's precedent locations are
        frozen until churn invalidation — and must be treated as
        read-only by callers.
        """
        out = self._inputs_cache.get(tid)
        if out is None:
            out = []
            finished = self.finished
            for p, data in self.wf.precedents[tid].items():
                if data > 0.0:
                    out.append((finished[p][0], data))
            self._inputs_cache[tid] = out
        return out

    def completion_duration(self) -> Optional[float]:
        """ct(f): response time from submission to exit-task completion."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    def efficiency(self) -> Optional[float]:
        """e(f) = eft(f) / ct(f) (Eq. 1)."""
        ct = self.completion_duration()
        if ct is None or ct <= 0:
            return None
        return self.eft / ct

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkflowExecution({self.wf.wid!r}, status={self.status.value}, "
            f"done={len(self.finished)}/{len(self.wf.tasks)})"
        )
