"""Peer node: scheduler node + resource node in one (paper §II.B).

Every node owns a single, non-sharable, non-preemptive CPU: at most one
task runs at any time.  The node keeps the ready set RDS(p) of dispatched
tasks (runnable or still waiting for data) and reports its *total load*
``l_r`` — the summed loads of the running task and everything in the ready
set — which is what the epidemic gossip advertises and Formula (9)'s
queuing-delay estimate divides by the capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.grid.state import TaskDispatch
from repro.sim.engine import Event

__all__ = ["PeerNode"]


class PeerNode:
    """One peer of the P2P grid.

    Parameters
    ----------
    nid:
        Node id (index into the topology).
    capacity:
        CPU capacity in MIPS (Table I: 1, 2, 4, 8 or 16).
    is_home:
        Whether workflows are submitted here (home/scheduler role).  All
        nodes are resource nodes.
    volatile:
        Whether the churn process may remove this node (home nodes are
        never volatile, matching §IV.B).
    """

    __slots__ = (
        "nid",
        "capacity",
        "is_home",
        "volatile",
        "alive",
        "epoch",
        "ready",
        "running",
        "completion_event",
        "suspended_remaining",
        "tasks_executed",
        "busy_time",
        "_load_cache",
    )

    def __init__(self, nid: int, capacity: float, is_home: bool = True, volatile: bool = False):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.nid = nid
        self.capacity = float(capacity)
        self.is_home = is_home
        self.volatile = volatile
        self.alive = True
        self.epoch = 0
        self.ready: list[TaskDispatch] = []
        self.running: Optional[TaskDispatch] = None
        self.completion_event: Optional[Event] = None
        #: seconds of execution left on the suspended running task (set when
        #: the node disconnects in ``suspend`` churn mode).
        self.suspended_remaining: Optional[float] = None
        # counters for diagnostics
        self.tasks_executed = 0
        self.busy_time = 0.0
        #: Memoized ``total_load`` (None = recompute).  The gossip layer
        #: reads the load of every live node every cycle, most of which are
        #: idle between events; every ready/running mutation invalidates.
        self._load_cache: Optional[float] = None

    # -------------------------------------------------------------- queries
    def total_load(self) -> float:
        """l_r: loads of the running task plus every ready-set task (MI).

        The paper estimates queueing *conservatively* with full task loads,
        so the running task contributes its whole load too.
        """
        cached = self._load_cache
        if cached is None:
            cached = self.running.load if self.running is not None else 0.0
            for d in self.ready:
                cached += d.load
            self._load_cache = cached
        return cached

    def invalidate_load(self) -> None:
        """Drop the memoized total load (call after any out-of-band
        mutation of ``ready``/``running``, e.g. churn cleanup)."""
        self._load_cache = None

    def runnable_tasks(self) -> list[TaskDispatch]:
        """Ready-set tasks whose image and dependent data have all arrived
        (§II.A step 9: only those can be selected for execution)."""
        return [d for d in self.ready if d.runnable]

    def poll_runnable(self) -> list[TaskDispatch]:
        """One-pass phase-2 scan: the runnable tasks, with lazily cancelled
        entries pruned from the ready set along the way (replaces the old
        separate any()/filter/runnable passes on the hot path)."""
        ready = self.ready
        runnable: list[TaskDispatch] = []
        saw_cancelled = False
        for d in ready:
            if d.cancelled:
                saw_cancelled = True
            elif d.pending_inputs == 0 and d.start_time is None:
                runnable.append(d)
        if saw_cancelled:
            self.ready = [d for d in ready if not d.cancelled]
            self._load_cache = None
        return runnable

    @property
    def busy(self) -> bool:
        """True while a task occupies the CPU."""
        return self.running is not None

    # ------------------------------------------------------------- mutation
    def enqueue(self, dispatch: TaskDispatch) -> None:
        """Phase 1 migrated a task here: add it to the ready set."""
        self.ready.append(dispatch)
        self._load_cache = None

    def remove(self, dispatch: TaskDispatch) -> None:
        """Drop a (cancelled) dispatch from the ready set if present."""
        try:
            self.ready.remove(dispatch)
        except ValueError:
            pass
        else:
            self._load_cache = None

    def start(self, dispatch: TaskDispatch, now: float) -> float:
        """Assign the CPU to ``dispatch``; returns its execution time."""
        if self.running is not None:
            raise RuntimeError(f"node {self.nid} CPU is busy")
        if not dispatch.runnable:
            raise RuntimeError(
                f"task {dispatch.key()} is not runnable (pending inputs "
                f"{dispatch.pending_inputs})"
            )
        self.ready.remove(dispatch)
        dispatch.start_time = now
        self.running = dispatch
        # The load *value* is unchanged, but a fresh summation would now
        # start from the running task — different float association — so
        # the memo must be recomputed, not kept.
        self._load_cache = None
        et = dispatch.load / self.capacity
        self.busy_time += et
        return et

    def finish_running(self, now: float) -> TaskDispatch:
        """CPU completed the current task; frees the node."""
        if self.running is None:
            raise RuntimeError(f"node {self.nid} has nothing running")
        d = self.running
        d.finish_time = now
        self.running = None
        self.completion_event = None
        self._load_cache = None
        self.tasks_executed += 1
        return d

    def reset_for_rejoin(self, epoch: int) -> None:
        """Wipe volatile state when the churn process revives this node
        (``fail`` churn mode: the node returns empty)."""
        self.alive = True
        self.epoch = epoch
        self.ready.clear()
        self.running = None
        self.completion_event = None
        self.suspended_remaining = None
        self._load_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return (
            f"PeerNode({self.nid}, {self.capacity} MIPS, {state}, "
            f"ready={len(self.ready)}, running={self.running is not None})"
        )
