"""Node churn (substrate S13, paper §IV.B).

The *dynamic factor* df is the ratio of churning nodes to the total node
count per scheduling interval: with df = 0.1 and 1000 nodes, every interval
100 nodes disconnect and 100 (re)join.  Home nodes never churn ("we just
consider the dynamic cases where the churning nodes are not home nodes");
the volatile population is resource-only.

Each churn tick first revives nodes from the departed pool (joiners arrive
fresh — empty ready set, empty gossip state) and then disconnects a new
batch of victims, so a departed node stays away for at least one full
interval.  A disconnecting node loses its running task, its ready set and
all inbound transfers; the owning workflows fail (the paper defers
rescheduling to future work) unless the ``reschedule_failed`` extension is
enabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import P2PGridSystem

__all__ = ["ChurnProcess"]


class ChurnProcess:
    """Periodic join/leave driver bound to a grid system."""

    def __init__(self, system: "P2PGridSystem", rng: np.random.Generator):
        self.system = system
        self.rng = rng
        cfg = system.config
        self.batch = int(round(cfg.dynamic_factor * cfg.n_nodes))
        self.volatile_ids = [n.nid for n in system.nodes if n.volatile]
        self.departed: list[int] = []
        self.total_departures = 0
        self.total_joins = 0

    def tick(self, cycle: int) -> None:
        """One churn interval: revive last batch, then disconnect a new one."""
        if self.batch <= 0 or not self.volatile_ids:
            return
        # --- joins: the previously departed batch returns fresh ----------
        joiners = self.departed
        self.departed = []
        for nid in joiners:
            self.system.revive_node(nid)
        self.total_joins += len(joiners)

        # --- leaves: sample new victims among alive volatile nodes -------
        alive = [nid for nid in self.volatile_ids if self.system.nodes[nid].alive]
        k = min(self.batch, len(alive))
        if k == 0:
            return
        victims = self.rng.choice(np.asarray(alive, dtype=np.int64), size=k, replace=False)
        for nid in victims:
            nid = int(nid)
            self.system.kill_node(nid)
            self.departed.append(nid)
        self.total_departures += k
