"""Node churn (substrate S13, paper §IV.B) — back-compat shim.

The churn driver moved into the pluggable availability subsystem:
:class:`repro.availability.models.PaperIntervalChurn` is the paper's
fixed per-interval batch model (bit-identical to the class that used to
live here), alongside session-based, trace-driven, correlated-failure and
ramp models selected via ``ExperimentConfig.churn_model``.

``ChurnProcess`` remains as an alias so existing imports keep working.
"""

from __future__ import annotations

from repro.availability.models import PaperIntervalChurn as ChurnProcess

__all__ = ["ChurnProcess"]
