"""Evaluation metrics (substrate S17): Eq. (2) ACT, Eq. (3) AE, throughput."""

from repro.metrics.collectors import MetricsCollector, RunResult, WorkflowRecord

__all__ = ["MetricsCollector", "RunResult", "WorkflowRecord"]
