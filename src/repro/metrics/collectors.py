"""Metric collection: per-workflow records and hourly time series.

The paper's figures plot, against simulated time, the cumulative

* **throughput** — number of workflows finished so far (Fig. 4/12),
* **ACT** — average completion time over finished workflows, Eq. (2)
  (Fig. 5/7/9/11c/13), and
* **AE** — average execution efficiency eft/ct over finished workflows,
  Eq. (3) (Fig. 6/8/10/11b/14).

:class:`MetricsCollector` accumulates those incrementally (O(1) per
completion); :class:`RunResult` is the detached, pickle-friendly outcome
object the experiment harness and the public API return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.telemetry import TelemetrySnapshot

__all__ = ["MetricsCollector", "RunResult", "WorkflowRecord"]


@dataclass(frozen=True)
class WorkflowRecord:
    """Final fate of one submitted workflow."""

    wid: str
    home_id: int
    n_tasks: int
    eft: float
    submit_time: float
    status: str
    completion_time: Optional[float] = None
    failure_reason: str = ""

    @property
    def ct(self) -> Optional[float]:
        """Response time ct(f) (None unless finished)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    @property
    def efficiency(self) -> Optional[float]:
        """e(f) = eft / ct (None unless finished)."""
        ct = self.ct
        if ct is None or ct <= 0:
            return None
        return self.eft / ct


@dataclass
class Sample:
    """One time-series point (hourly by default)."""

    time: float
    throughput: int
    act: float
    ae: float
    rss_mean: float = 0.0
    alive_nodes: int = 0
    #: Cumulative node departures/revivals up to this instant (availability
    #: subsystem; both stay 0 on static grids).
    departed: int = 0
    revived: int = 0


class MetricsCollector:
    """Incremental accumulation of the paper's three headline metrics,
    plus the availability series churn models feed (departure/revival
    counts, lost/recovered tasks, and the time-weighted alive fraction
    behind the availability-weighted AE)."""

    def __init__(self, n_nodes: int = 0) -> None:
        self.records: list[WorkflowRecord] = []
        self.samples: list[Sample] = []
        self._n_done = 0
        self._sum_ct = 0.0
        self._sum_eff = 0.0
        self._n_failed = 0
        # Availability accounting: a step-function integral of the alive
        # count over time (exact, fed per churn event — not sampled).
        self._total_nodes = n_nodes
        self._alive = n_nodes
        self._alive_t = 0.0
        self._alive_integral = 0.0
        self._n_departures = 0
        self._n_revivals = 0
        self._n_tasks_lost = 0
        self._n_tasks_recovered = 0

    # --------------------------------------------------------------- events
    def workflow_done(self, record: WorkflowRecord) -> None:
        """Register a completed workflow."""
        self.records.append(record)
        ct = record.ct
        eff = record.efficiency
        assert ct is not None and eff is not None
        self._n_done += 1
        self._sum_ct += ct
        self._sum_eff += eff

    def workflow_failed(self, record: WorkflowRecord) -> None:
        """Register a failed workflow (churn loss; excluded from ACT/AE)."""
        self.records.append(record)
        self._n_failed += 1

    def sample(self, time: float, rss_mean: float = 0.0, alive_nodes: int = 0) -> None:
        """Record the cumulative metrics at ``time``."""
        self.samples.append(
            Sample(
                time=time,
                throughput=self._n_done,
                act=self.act,
                ae=self.ae,
                rss_mean=rss_mean,
                alive_nodes=alive_nodes,
                departed=self._n_departures,
                revived=self._n_revivals,
            )
        )

    # --------------------------------------------------------- availability
    def _alive_step(self, time: float, alive: int) -> None:
        self._alive_integral += self._alive * (time - self._alive_t)
        self._alive_t = time
        self._alive = alive

    def node_departed(self, time: float, alive: int) -> None:
        """A node disconnected; ``alive`` is the post-transition count."""
        self._n_departures += 1
        self._alive_step(time, alive)

    def node_revived(self, time: float, alive: int) -> None:
        """A node rejoined; ``alive`` is the post-transition count."""
        self._n_revivals += 1
        self._alive_step(time, alive)

    def task_lost(self) -> None:
        """A dispatched task died with its node."""
        self._n_tasks_lost += 1

    def task_recovered(self) -> None:
        """A churn-lost task was re-entered by the recovery policy and has
        now actually finished (so ``n_tasks_recovered <= n_tasks_lost``,
        with equality only when every re-entered task completed)."""
        self._n_tasks_recovered += 1

    def avg_alive_fraction(self, horizon: float) -> float:
        """Time-weighted mean fraction of nodes alive over ``[0, horizon]``.

        1.0 on static grids (and when the collector was built without a
        node count).  This weights the efficiency metric: availability-
        weighted AE = AE × this fraction, crediting an algorithm only for
        the capacity that actually existed.
        """
        if self._total_nodes <= 0 or horizon <= 0:
            return 1.0
        integral = self._alive_integral + self._alive * (horizon - self._alive_t)
        return integral / (horizon * self._total_nodes)

    # -------------------------------------------------------------- queries
    @property
    def n_done(self) -> int:
        return self._n_done

    @property
    def n_failed(self) -> int:
        return self._n_failed

    @property
    def n_departures(self) -> int:
        return self._n_departures

    @property
    def n_revivals(self) -> int:
        return self._n_revivals

    @property
    def n_tasks_lost(self) -> int:
        return self._n_tasks_lost

    @property
    def n_tasks_recovered(self) -> int:
        return self._n_tasks_recovered

    @property
    def act(self) -> float:
        """Average completion time (Eq. 2) over finished workflows."""
        return self._sum_ct / self._n_done if self._n_done else 0.0

    @property
    def ae(self) -> float:
        """Average efficiency (Eq. 3) over finished workflows."""
        return self._sum_eff / self._n_done if self._n_done else 0.0


@dataclass
class RunResult:
    """Everything an experiment needs to know about one finished run."""

    algorithm: str
    seed: int
    n_nodes: int
    n_workflows: int
    total_time: float
    act: float
    ae: float
    n_done: int
    n_failed: int
    events_executed: int
    wall_seconds: float
    rss_mean: float
    records: list[WorkflowRecord] = field(default_factory=list)
    samples: list[Sample] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    # Availability subsystem outputs (all neutral on static grids).
    n_departures: int = 0
    n_revivals: int = 0
    n_tasks_lost: int = 0
    #: Lost tasks that were re-entered by the recovery policy *and*
    #: subsequently finished (always <= ``n_tasks_lost``).
    n_tasks_recovered: int = 0
    #: Time-weighted mean fraction of nodes alive over the horizon.
    avg_alive_fraction: float = 1.0
    #: AE × avg_alive_fraction — efficiency credited against the capacity
    #: that actually existed under churn.
    availability_ae: float = 0.0
    #: Runtime telemetry snapshot (None unless ``config.telemetry`` was
    #: set).  Deliberately outside ``result_digest``'s field list: wall-
    #: clock observations must never perturb determinism fingerprints.
    telemetry: Optional[TelemetrySnapshot] = None

    # ------------------------------------------------------------- series
    def series(self, metric: str) -> tuple[list[float], list[float]]:
        """``(times_hours, values)`` for ``metric`` in
        {'throughput', 'act', 'ae'} — the paper's x-axes are hours."""
        times = [s.time / 3600.0 for s in self.samples]
        values = [float(getattr(s, metric)) for s in self.samples]
        return times, values

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted workflows that finished."""
        return self.n_done / self.n_workflows if self.n_workflows else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        return (
            f"[{self.algorithm}] {self.n_done}/{self.n_workflows} workflows "
            f"finished ({self.n_failed} failed) on {self.n_nodes} nodes in "
            f"{self.total_time / 3600.0:.0f} simulated hours | "
            f"ACT={self.act:.0f}s AE={self.ae:.3f} | "
            f"{self.events_executed} events in {self.wall_seconds:.1f}s wall"
        )
