"""Structured execution tracing (extension beyond the paper).

Attach a :class:`~repro.trace.recorder.TraceRecorder` to a
:class:`~repro.grid.system.P2PGridSystem` to capture every dispatch, task
start/finish, transfer and churn event, then inspect schedules with
:mod:`repro.trace.analysis` (per-node utilization, queueing breakdowns,
ASCII Gantt charts).  Used by the examples and invaluable when debugging
scheduling policies.
"""

from repro.trace.recorder import TraceEvent, TraceRecorder
from repro.trace.analysis import gantt_ascii, node_utilization, waiting_time_breakdown

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "gantt_ascii",
    "node_utilization",
    "waiting_time_breakdown",
]
