"""Structured execution tracing (extension beyond the paper).

Attach a :class:`~repro.trace.recorder.TraceRecorder` to a
:class:`~repro.grid.system.P2PGridSystem` to capture every dispatch, task
start/finish, transfer, gossip round and churn event, then inspect
schedules with :mod:`repro.trace.analysis` (per-node utilization, queueing
breakdowns, transfer/gossip attribution, ASCII Gantt charts) or export
Perfetto-viewable Chrome traces via :mod:`repro.obs.spans`.  Used by the
examples and invaluable when debugging scheduling policies.
"""

from repro.trace.recorder import TraceEvent, TraceRecorder
from repro.trace.analysis import (
    gantt_ascii,
    gossip_round_stats,
    node_utilization,
    time_attribution,
    transfer_stats,
    waiting_time_breakdown,
)

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "gantt_ascii",
    "gossip_round_stats",
    "node_utilization",
    "time_attribution",
    "transfer_stats",
    "waiting_time_breakdown",
]
