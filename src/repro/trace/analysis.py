"""Schedule analysis over recorded traces: utilization, waits, Gantt."""

from __future__ import annotations

from collections import defaultdict

from repro.trace.recorder import TraceRecorder

__all__ = ["node_utilization", "waiting_time_breakdown", "gantt_ascii"]


def node_utilization(recorder: TraceRecorder, horizon: float) -> dict[int, float]:
    """Fraction of ``[0, horizon]`` each node's CPU was busy."""
    busy: dict[int, float] = defaultdict(float)
    for node, _, _, start, finish in recorder.task_intervals():
        busy[node] += finish - start
    return {n: t / horizon for n, t in sorted(busy.items())}


def waiting_time_breakdown(recorder: TraceRecorder) -> dict[str, float]:
    """Mean per-task delay split into *dispatch→start* (ready-set wait +
    data transfers) and *start→finish* (execution)."""
    dispatches: dict[tuple[str, int], float] = {}
    starts: dict[tuple[str, int], float] = {}
    wait_total = exec_total = 0.0
    n = 0
    for e in recorder.events:
        key = (e.wid, e.tid)
        if e.kind == "dispatch":
            dispatches[key] = e.time
        elif e.kind == "start":
            starts[key] = e.time
        elif e.kind == "finish" and key in starts:
            start = starts.pop(key)
            disp = dispatches.pop(key, start)
            wait_total += start - disp
            exec_total += e.time - start
            n += 1
    if n == 0:
        return {"mean_wait": 0.0, "mean_exec": 0.0, "tasks": 0.0}
    return {"mean_wait": wait_total / n, "mean_exec": exec_total / n, "tasks": float(n)}


def gantt_ascii(
    recorder: TraceRecorder,
    nodes: list[int] | None = None,
    horizon: float | None = None,
    width: int = 72,
) -> str:
    """Render per-node CPU occupation as an ASCII Gantt chart.

    Each row is one node; distinct workflows cycle through marker
    characters.  Intended for small scenarios (examples, debugging).
    """
    intervals = recorder.task_intervals()
    if not intervals:
        return "(no executed tasks)"
    if horizon is None:
        horizon = max(f for _, _, _, _, f in intervals)
    if nodes is None:
        nodes = sorted({n for n, _, _, _, _ in intervals})
    markers = "abcdefghijklmnopqrstuvwxyz0123456789"
    wid_marker: dict[str, str] = {}
    rows = []
    for node in nodes:
        line = [" "] * width
        for n, wid, _, start, finish in intervals:
            if n != node:
                continue
            m = wid_marker.setdefault(wid, markers[len(wid_marker) % len(markers)])
            a = int(start / horizon * (width - 1))
            b = max(a + 1, int(finish / horizon * (width - 1)))
            for k in range(a, min(b, width)):
                line[k] = m
        rows.append(f"node {node:>4} |{''.join(line)}|")
    legend = "  ".join(f"{m}={w}" for w, m in list(wid_marker.items())[:12])
    out = "\n".join(rows)
    return f"{out}\n  t=0 {'-' * (width - 12)} t={horizon:.0f}s\n  {legend}"
