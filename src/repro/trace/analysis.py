"""Schedule analysis over recorded traces: utilization, waits, Gantt."""

from __future__ import annotations

from collections import defaultdict

from repro.trace.recorder import TraceRecorder

__all__ = [
    "node_utilization",
    "waiting_time_breakdown",
    "transfer_stats",
    "gossip_round_stats",
    "time_attribution",
    "gantt_ascii",
]


def node_utilization(recorder: TraceRecorder, horizon: float) -> dict[int, float]:
    """Fraction of ``[0, horizon]`` each node's CPU was busy."""
    busy: dict[int, float] = defaultdict(float)
    for node, _, _, start, finish in recorder.task_intervals():
        busy[node] += finish - start
    return {n: t / horizon for n, t in sorted(busy.items())}


def waiting_time_breakdown(recorder: TraceRecorder) -> dict[str, float]:
    """Mean per-task delay split into *dispatch→start* (ready-set wait +
    data transfers) and *start→finish* (execution)."""
    dispatches: dict[tuple[str, int], float] = {}
    starts: dict[tuple[str, int], float] = {}
    wait_total = exec_total = 0.0
    n = 0
    for e in recorder.events:
        key = (e.wid, e.tid)
        if e.kind == "dispatch":
            dispatches[key] = e.time
        elif e.kind == "start":
            starts[key] = e.time
        elif e.kind == "finish" and key in starts:
            start = starts.pop(key)
            disp = dispatches.pop(key, start)
            wait_total += start - disp
            exec_total += e.time - start
            n += 1
    if n == 0:
        return {"mean_wait": 0.0, "mean_exec": 0.0, "tasks": 0.0}
    return {"mean_wait": wait_total / n, "mean_exec": exec_total / n, "tasks": float(n)}


def transfer_stats(recorder: TraceRecorder) -> dict[str, float]:
    """Aggregate the ``transfer_start``/``transfer_done`` pairs.

    Pairs match on the transfer sequence number the recorder put in
    ``tid``; starts without a done are in-flight at the horizon or were
    cancelled by churn.
    """
    starts: dict[int, float] = {}
    n_done = 0
    time_total = 0.0
    megabits = 0.0
    for e in recorder.events:
        if e.kind == "transfer_start":
            starts[e.tid] = e.time
        elif e.kind == "transfer_done":
            t0 = starts.pop(e.tid, None)
            if t0 is not None:
                n_done += 1
                time_total += e.time - t0
                megabits += e.size
    return {
        "transfers": float(n_done),
        "unfinished": float(len(starts)),
        "mean_seconds": time_total / n_done if n_done else 0.0,
        "total_megabits": megabits,
    }


def gossip_round_stats(recorder: TraceRecorder) -> dict[str, float]:
    """Round count and message volume from ``gossip_round`` events."""
    rounds = recorder.of_kind("gossip_round")
    messages = sum(e.size for e in rounds)
    return {
        "rounds": float(len(rounds)),
        "messages": messages,
        "mean_messages_per_round": messages / len(rounds) if rounds else 0.0,
    }


def time_attribution(recorder: TraceRecorder) -> dict[str, float]:
    """Where sim-time went per dispatched task, summed over the run.

    ``transfer_seconds`` is summed over individual transfers (concurrent
    transfers count multiply — it attributes work, not wall span);
    ``wait_seconds``/``exec_seconds`` come from the dispatch→start→finish
    chain per task.
    """
    breakdown = waiting_time_breakdown(recorder)
    transfers = transfer_stats(recorder)
    n = breakdown["tasks"]
    return {
        "tasks": n,
        "wait_seconds": breakdown["mean_wait"] * n,
        "exec_seconds": breakdown["mean_exec"] * n,
        "transfer_seconds": transfers["mean_seconds"] * transfers["transfers"],
    }


def gantt_ascii(
    recorder: TraceRecorder,
    nodes: list[int] | None = None,
    horizon: float | None = None,
    width: int = 72,
) -> str:
    """Render per-node CPU occupation as an ASCII Gantt chart.

    Each row is one node; distinct workflows cycle through marker
    characters.  Intended for small scenarios (examples, debugging).
    """
    intervals = recorder.task_intervals()
    if not intervals:
        return "(no executed tasks)"
    if horizon is None:
        horizon = max(f for _, _, _, _, f in intervals)
    if nodes is None:
        nodes = sorted({n for n, _, _, _, _ in intervals})
    markers = "abcdefghijklmnopqrstuvwxyz0123456789"
    wid_marker: dict[str, str] = {}
    rows = []
    for node in nodes:
        line = [" "] * width
        for n, wid, _, start, finish in intervals:
            if n != node:
                continue
            m = wid_marker.setdefault(wid, markers[len(wid_marker) % len(markers)])
            a = int(start / horizon * (width - 1))
            b = max(a + 1, int(finish / horizon * (width - 1)))
            for k in range(a, min(b, width)):
                line[k] = m
        rows.append(f"node {node:>4} |{''.join(line)}|")
    legend = "  ".join(f"{m}={w}" for w, m in list(wid_marker.items())[:12])
    out = "\n".join(rows)
    return f"{out}\n  t=0 {'-' * (width - 12)} t={horizon:.0f}s\n  {legend}"
