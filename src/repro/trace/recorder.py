"""Event recording hooks for the grid system.

The recorder monkey-patches nothing: :meth:`TraceRecorder.attach` wraps the
handful of system callbacks (dispatch execution, CPU start/finish, data
transfers, gossip rounds, workflow terminals, churn task losses, node
kill/revive) with thin recording shims.  Overhead is one list append per
event; recording 100k events costs a few milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import P2PGridSystem

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``kind`` is one of ``dispatch``, ``start``, ``finish``,
    ``transfer_start``, ``transfer_done``, ``gossip_round``,
    ``workflow_done``, ``workflow_failed``, ``task_lost``, ``node_down``,
    ``node_up``.

    Field use per kind: transfer events carry ``src`` (source node),
    ``size`` (megabits) and ``tid`` (a transfer sequence number pairing
    start with done); gossip rounds carry ``tid`` (cycle index) and
    ``size`` (messages sent that round); task/workflow events carry
    ``wid``/``tid`` as usual.
    """

    time: float
    kind: str
    node: int
    wid: str = ""
    tid: int = -1
    detail: str = ""
    src: int = -1
    size: float = 0.0


class TraceRecorder:
    """Collects :class:`TraceEvent` objects from a running system."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._attached = False

    # ------------------------------------------------------------------ API
    def attach(self, system: "P2PGridSystem") -> "TraceRecorder":
        """Instrument ``system``; call before ``system.run()``."""
        if self._attached:
            raise RuntimeError("recorder already attached")
        self._attached = True
        rec = self.events

        orig_execute = system.execute_decision

        def execute_decision(decision):
            ok = orig_execute(decision)
            if ok:
                rec.append(
                    TraceEvent(
                        time=system.sim.now,
                        kind="dispatch",
                        node=decision.target,
                        wid=decision.wx.wf.wid,
                        tid=decision.tid,
                    )
                )
            return ok

        system.execute_decision = execute_decision  # type: ignore[method-assign]

        orig_try_start = system._try_start

        def try_start(node):
            was = node.running
            orig_try_start(node)
            if node.running is not None and node.running is not was:
                d = node.running
                rec.append(
                    TraceEvent(
                        time=system.sim.now,
                        kind="start",
                        node=node.nid,
                        wid=d.wid,
                        tid=d.tid,
                    )
                )

        system._try_start = try_start  # type: ignore[method-assign]

        orig_finished = system._task_finished

        def task_finished(dispatch, node):
            rec.append(
                TraceEvent(
                    time=system.sim.now,
                    kind="finish",
                    node=node.nid,
                    wid=dispatch.wid,
                    tid=dispatch.tid,
                )
            )
            orig_finished(dispatch, node)

        system._task_finished = task_finished  # type: ignore[method-assign]

        orig_kill = system.kill_node

        def kill_node(nid):
            alive_before = system.nodes[nid].alive
            orig_kill(nid)
            if alive_before:
                rec.append(TraceEvent(time=system.sim.now, kind="node_down", node=nid))

        system.kill_node = kill_node  # type: ignore[method-assign]

        orig_revive = system.revive_node

        def revive_node(nid):
            dead_before = not system.nodes[nid].alive
            orig_revive(nid)
            if dead_before:
                rec.append(TraceEvent(time=system.sim.now, kind="node_up", node=nid))

        system.revive_node = revive_node  # type: ignore[method-assign]

        # Transfers: start/done pairs share a sequence number in ``tid``
        # (cancelled transfers record a start with no matching done).
        orig_xfer_start = system.transfers.start
        xfer_seq = count(1).__next__

        def transfer_start(src, dst, megabits, on_complete):
            seq = xfer_seq()
            rec.append(
                TraceEvent(
                    time=system.sim.now,
                    kind="transfer_start",
                    node=dst,
                    tid=seq,
                    src=src,
                    size=megabits,
                )
            )

            def done():
                rec.append(
                    TraceEvent(
                        time=system.sim.now,
                        kind="transfer_done",
                        node=dst,
                        tid=seq,
                        src=src,
                        size=megabits,
                    )
                )
                on_complete()

            return orig_xfer_start(src, dst, megabits, done)

        system.transfers.start = transfer_start  # type: ignore[method-assign]

        # Gossip rounds: one event per cycle with that round's message
        # count in ``size``.  Safe to shadow as an instance attribute —
        # the system binds ``self._gossip_cycle`` into its PeriodicActivity
        # inside run(), after attach().
        orig_gossip = system._gossip_cycle

        def gossip_cycle(cycle):
            before = system.epidemic.messages_sent
            orig_gossip(cycle)
            rec.append(
                TraceEvent(
                    time=system.sim.now,
                    kind="gossip_round",
                    node=-1,
                    tid=cycle,
                    size=float(system.epidemic.messages_sent - before),
                )
            )

        system._gossip_cycle = gossip_cycle  # type: ignore[method-assign]

        # Workflow lifecycle terminals + churn task losses, via the
        # collector's bound methods (the single funnel for all of them).
        orig_wf_done = system.collector.workflow_done

        def workflow_done(record):
            rec.append(
                TraceEvent(
                    time=system.sim.now,
                    kind="workflow_done",
                    node=record.home_id,
                    wid=record.wid,
                )
            )
            orig_wf_done(record)

        system.collector.workflow_done = workflow_done  # type: ignore[method-assign]

        orig_wf_failed = system.collector.workflow_failed

        def workflow_failed(record):
            rec.append(
                TraceEvent(
                    time=system.sim.now,
                    kind="workflow_failed",
                    node=record.home_id,
                    wid=record.wid,
                    detail=record.failure_reason,
                )
            )
            orig_wf_failed(record)

        system.collector.workflow_failed = workflow_failed  # type: ignore[method-assign]

        orig_task_lost = system.collector.task_lost

        def task_lost():
            rec.append(TraceEvent(time=system.sim.now, kind="task_lost", node=-1))
            orig_task_lost()

        system.collector.task_lost = task_lost  # type: ignore[method-assign]
        return self

    # -------------------------------------------------------------- queries
    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def for_workflow(self, wid: str) -> list[TraceEvent]:
        """Events belonging to one workflow."""
        return [e for e in self.events if e.wid == wid]

    def for_node(self, node: int) -> list[TraceEvent]:
        """Events at one node."""
        return [e for e in self.events if e.node == node]

    def task_intervals(self) -> list[tuple[int, str, int, float, float]]:
        """``(node, wid, tid, start, finish)`` per executed task."""
        starts: dict[tuple[str, int], TraceEvent] = {}
        out: list[tuple[int, str, int, float, float]] = []
        for e in self.events:
            if e.kind == "start":
                starts[(e.wid, e.tid)] = e
            elif e.kind == "finish":
                s = starts.pop((e.wid, e.tid), None)
                if s is not None:
                    out.append((e.node, e.wid, e.tid, s.time, e.time))
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self.events)
