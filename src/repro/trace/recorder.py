"""Event recording hooks for the grid system.

The recorder monkey-patches nothing: :meth:`TraceRecorder.attach` wraps the
handful of system callbacks (dispatch execution, CPU start/finish, node
kill/revive) with thin recording shims.  Overhead is one list append per
event; recording 100k events costs a few milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import P2PGridSystem

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``kind`` is one of ``dispatch``, ``start``, ``finish``, ``workflow_done``,
    ``workflow_failed``, ``node_down``, ``node_up``.
    """

    time: float
    kind: str
    node: int
    wid: str = ""
    tid: int = -1
    detail: str = ""


class TraceRecorder:
    """Collects :class:`TraceEvent` objects from a running system."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._attached = False

    # ------------------------------------------------------------------ API
    def attach(self, system: "P2PGridSystem") -> "TraceRecorder":
        """Instrument ``system``; call before ``system.run()``."""
        if self._attached:
            raise RuntimeError("recorder already attached")
        self._attached = True
        rec = self.events

        orig_execute = system.execute_decision

        def execute_decision(decision):
            ok = orig_execute(decision)
            if ok:
                rec.append(
                    TraceEvent(
                        time=system.sim.now,
                        kind="dispatch",
                        node=decision.target,
                        wid=decision.wx.wf.wid,
                        tid=decision.tid,
                    )
                )
            return ok

        system.execute_decision = execute_decision  # type: ignore[method-assign]

        orig_try_start = system._try_start

        def try_start(node):
            was = node.running
            orig_try_start(node)
            if node.running is not None and node.running is not was:
                d = node.running
                rec.append(
                    TraceEvent(
                        time=system.sim.now,
                        kind="start",
                        node=node.nid,
                        wid=d.wid,
                        tid=d.tid,
                    )
                )

        system._try_start = try_start  # type: ignore[method-assign]

        orig_finished = system._task_finished

        def task_finished(dispatch, node):
            rec.append(
                TraceEvent(
                    time=system.sim.now,
                    kind="finish",
                    node=node.nid,
                    wid=dispatch.wid,
                    tid=dispatch.tid,
                )
            )
            orig_finished(dispatch, node)

        system._task_finished = task_finished  # type: ignore[method-assign]

        orig_kill = system.kill_node

        def kill_node(nid):
            alive_before = system.nodes[nid].alive
            orig_kill(nid)
            if alive_before:
                rec.append(TraceEvent(time=system.sim.now, kind="node_down", node=nid))

        system.kill_node = kill_node  # type: ignore[method-assign]

        orig_revive = system.revive_node

        def revive_node(nid):
            dead_before = not system.nodes[nid].alive
            orig_revive(nid)
            if dead_before:
                rec.append(TraceEvent(time=system.sim.now, kind="node_up", node=nid))

        system.revive_node = revive_node  # type: ignore[method-assign]
        return self

    # -------------------------------------------------------------- queries
    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def for_workflow(self, wid: str) -> list[TraceEvent]:
        """Events belonging to one workflow."""
        return [e for e in self.events if e.wid == wid]

    def for_node(self, node: int) -> list[TraceEvent]:
        """Events at one node."""
        return [e for e in self.events if e.node == node]

    def task_intervals(self) -> list[tuple[int, str, int, float, float]]:
        """``(node, wid, tid, start, finish)`` per executed task."""
        starts: dict[tuple[str, int], TraceEvent] = {}
        out: list[tuple[int, str, int, float, float]] = []
        for e in self.events:
            if e.kind == "start":
                starts[(e.wid, e.tid)] = e
            elif e.kind == "finish":
                s = starts.pop((e.wid, e.tid), None)
                if s is not None:
                    out.append((e.node, e.wid, e.tid, s.time, e.time))
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self.events)
